package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// sampleCheckpoint builds a two-cell checkpoint over sampleDataset's runs:
// shard 0 completed both runs of a two-run, two-shard study.
func sampleCheckpoint() *Checkpoint {
	ds := sampleDataset()
	return &Checkpoint{
		Params: StudyParams{
			Seed:         321,
			Scale:        0.5,
			ProbeWatchNS: int64(20 * time.Second),
			RunsDigest:   "runs-digest",
			FaultsDigest: "faults-digest",
			Retry:        RetryParams{MaxAttempts: 2, BackoffNS: 1e9, QuarantineAfter: 2},
		},
		Shards:       2,
		FleetShard:   -1,
		Runs:         []RunName{RunGeneral, RunRed},
		ChannelOrder: []string{"KiKA", "n-tv"},
		OrderDigest:  ChannelOrderDigest([]string{"KiKA", "n-tv"}),
		Cells: []*CheckpointCell{
			{
				Shard:    0,
				RunIndex: 0,
				Run:      RunGeneral,
				State: CellState{
					FrameworkDraws: 17,
					TVDraws:        4,
					RecorderNextID: 42,
					TVLogTail: []webos.LogEntry{{
						Time: time.Date(2023, 8, 21, 18, 0, 0, 0, time.UTC),
						Kind: webos.LogApp, Detail: "power off",
					}},
					FailStreak:  map[string]int{"n-tv": 1},
					Quarantined: []string{"dead-channel"},
					Trackers: []TrackerState{
						{Domain: "tvping.com", Draws: 6, NextID: 3},
						{Domain: "tvping.com", Draws: 2},
					},
				},
				Data: ds.Runs[0],
			},
			{
				Shard:    0,
				RunIndex: 1,
				Run:      RunRed,
				State: CellState{
					FrameworkDraws: 34,
					TVDraws:        6,
					RecorderNextID: 57,
				},
				Data: ds.Runs[1],
			},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(cp); err != nil {
		t.Fatalf("round-tripped checkpoint fails validation against itself: %v", err)
	}
	if len(got.Cells) != len(cp.Cells) {
		t.Fatalf("cells = %d, want %d", len(got.Cells), len(cp.Cells))
	}
	for i, cell := range got.Cells {
		want := cp.Cells[i]
		if cell.Shard != want.Shard || cell.RunIndex != want.RunIndex || cell.Run != want.Run {
			t.Errorf("cell %d coordinates = (%d, %d, %s), want (%d, %d, %s)",
				i, cell.Shard, cell.RunIndex, cell.Run, want.Shard, want.RunIndex, want.Run)
		}
		if !reflect.DeepEqual(cell.State, want.State) {
			t.Errorf("cell %d state = %+v, want %+v", i, cell.State, want.State)
		}
	}
	// The run data must survive byte-identically — same digest contract as
	// the dataset snapshot.
	wantDigest, err := (&Dataset{Runs: []*RunData{cp.Cells[0].Data, cp.Cells[1].Data}}).Digest()
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := (&Dataset{Runs: []*RunData{got.Cells[0].Data, got.Cells[1].Data}}).Digest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatalf("cell run data digest changed across the round trip:\n  %s\n  %s", gotDigest, wantDigest)
	}
}

// TestCheckpointLoadsAsDataset: a checkpoint file is an ordinary snapshot
// container, so the plain dataset loader must open it (skipping the
// checkpoint section) and see the cell runs.
func TestCheckpointLoadsAsDataset(t *testing.T) {
	cp := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("dataset loader rejects checkpoint container: %v", err)
	}
	if len(ds.Runs) != len(cp.Cells) {
		t.Fatalf("dataset view has %d runs, want %d", len(ds.Runs), len(cp.Cells))
	}
}

// TestCheckpointValidateNamesField: every way a resume can mismatch the
// journaled campaign must be rejected with the differing field named.
func TestCheckpointValidateNamesField(t *testing.T) {
	base := sampleCheckpoint()
	cases := []struct {
		name   string
		mutate func(cp *Checkpoint)
		want   string
	}{
		{"seed", func(cp *Checkpoint) { cp.Params.Seed++ }, "seed"},
		{"scale", func(cp *Checkpoint) { cp.Params.Scale *= 2 }, "scale"},
		{"probe watch", func(cp *Checkpoint) { cp.Params.ProbeWatchNS++ }, "probe watch time"},
		{"run specs digest", func(cp *Checkpoint) { cp.Params.RunsDigest = "other" }, "run specs"},
		{"fault config", func(cp *Checkpoint) { cp.Params.FaultsDigest = "other" }, "fault config"},
		{"retry policy", func(cp *Checkpoint) { cp.Params.Retry.MaxAttempts++ }, "retry policy"},
		{"shard count", func(cp *Checkpoint) { cp.Shards++ }, "shard count"},
		{"fleet shard", func(cp *Checkpoint) { cp.FleetShard = 1 }, "fleet shard"},
		{"run count", func(cp *Checkpoint) { cp.Runs = cp.Runs[:1] }, "run specs mismatch"},
		{"run names", func(cp *Checkpoint) { cp.Runs = []RunName{RunRed, RunGeneral} }, "run specs mismatch"},
		{"channel order", func(cp *Checkpoint) { cp.OrderDigest = "other" }, "channel order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := sampleCheckpoint()
			tc.mutate(want)
			err := base.Validate(want)
			if err == nil {
				t.Fatalf("mismatched %s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the differing field %q", err, tc.want)
			}
		})
	}
	if err := base.Validate(sampleCheckpoint()); err != nil {
		t.Fatalf("identical checkpoints rejected: %v", err)
	}
}

// TestCheckpointTruncatedEverywhere: a checkpoint container cut short at
// ANY byte must fail with a descriptive wrapped error — never a raw
// io.EOF, never a panic, and never a silently shorter checkpoint.
func TestCheckpointTruncatedEverywhere(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, err := ReadCheckpoint(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(raw))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.Fatalf("truncation at byte %d returned a raw %v instead of a descriptive error", cut, err)
		}
	}
}

// TestCheckpointCorruptedMetadata: damage inside the checkpoint's JSON
// metadata section must be reported as a metadata error, not decoded into
// nonsense.
func TestCheckpointCorruptedMetadata(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// The metadata section directly follows magic+version: tag byte, then
	// a uvarint length, then JSON starting with '{'.
	off := len(snapshotMagic) + 1
	if raw[off] != secCheckpoint {
		t.Fatalf("expected checkpoint section tag at offset %d, got %d", off, raw[off])
	}
	for i := off + 1; i < len(raw); i++ {
		if raw[i] == '{' {
			raw[i] = '!'
			break
		}
	}
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted metadata accepted")
	} else if !strings.Contains(err.Error(), "metadata") {
		t.Fatalf("error %q does not name the metadata section", err)
	}
}

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	path := journalPath(t)
	j, err := CreateJournal(path, cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cp.Cells {
		if err := j.Append(cell); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, validLen, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != fi.Size() {
		t.Fatalf("clean journal valid length %d != file size %d", validLen, fi.Size())
	}
	if err := got.Validate(cp); err != nil {
		t.Fatalf("journaled header fails validation: %v", err)
	}
	if len(got.Cells) != len(cp.Cells) {
		t.Fatalf("journal yields %d cells, want %d", len(got.Cells), len(cp.Cells))
	}
	for i, cell := range got.Cells {
		if !reflect.DeepEqual(cell.State, cp.Cells[i].State) {
			t.Errorf("cell %d state = %+v, want %+v", i, cell.State, cp.Cells[i].State)
		}
	}
}

// TestJournalTornTailEverywhere: cutting the journal at ANY byte must
// yield the intact frame prefix — header damage is fatal, a torn cell
// tail is ErrJournalTorn with every complete frame preserved, and a cut
// on a frame boundary is a clean (shorter) journal.
func TestJournalTornTailEverywhere(t *testing.T) {
	cp := sampleCheckpoint()
	path := journalPath(t)
	j, err := CreateJournal(path, cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: after the preamble+header frame, then after each
	// cell append.
	var bounds []int64
	stat := func() int64 {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	bounds = append(bounds, stat())
	for _, cell := range cp.Cells {
		if err := j.Append(cell); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, stat())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := bounds[0]

	cellsBelow := func(cut int64) int {
		n := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}
	onBoundary := func(cut int64) bool {
		for _, b := range bounds {
			if b == cut {
				return true
			}
		}
		return false
	}

	cut := filepath.Join(t.TempDir(), "cut.journal")
	for c := 0; c < len(raw); c++ {
		if err := os.WriteFile(cut, raw[:c], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, err := LoadJournal(cut)
		switch {
		case int64(c) < headerEnd:
			// The identity frame itself is damaged: unusable, and the error
			// must say so rather than hand back an empty checkpoint.
			if err == nil {
				t.Fatalf("cut at %d (inside header) accepted", c)
			}
			if errors.Is(err, ErrJournalTorn) {
				t.Fatalf("cut at %d (inside header) reported as recoverable torn tail: %v", c, err)
			}
		case onBoundary(int64(c)):
			if err != nil {
				t.Fatalf("cut at frame boundary %d rejected: %v", c, err)
			}
			if len(got.Cells) != cellsBelow(int64(c)) {
				t.Fatalf("cut at boundary %d yields %d cells, want %d", c, len(got.Cells), cellsBelow(int64(c)))
			}
		default:
			if !errors.Is(err, ErrJournalTorn) {
				t.Fatalf("cut at %d: want ErrJournalTorn, got %v", c, err)
			}
			if got == nil {
				t.Fatalf("cut at %d: torn tail returned no checkpoint", c)
			}
			want := cellsBelow(int64(c))
			if len(got.Cells) != want {
				t.Fatalf("cut at %d yields %d cells, want intact prefix of %d", c, len(got.Cells), want)
			}
			if !onBoundary(validLen) {
				t.Fatalf("cut at %d: valid length %d is not a frame boundary", c, validLen)
			}
		}
	}
}

// TestJournalResumeTruncatesAndAppends: ResumeJournal on a torn journal
// must truncate the tail and leave the file positioned so the next
// Append produces a clean journal.
func TestJournalResumeTruncatesAndAppends(t *testing.T) {
	cp := sampleCheckpoint()
	path := journalPath(t)
	j, err := CreateJournal(path, cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(cp.Cells[0]); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(cp.Cells[1]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second cell: keep 10 bytes of its frame.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:sizeAfterFirst.Size()+10], 0o644); err != nil {
		t.Fatal(err)
	}

	got, rj, err := ResumeJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 {
		t.Fatalf("resumed journal has %d cells, want the intact prefix of 1", len(got.Cells))
	}
	// Re-append the lost cell; the journal must read back clean.
	if err := rj.Append(cp.Cells[1]); err != nil {
		t.Fatal(err)
	}
	if err := rj.Close(); err != nil {
		t.Fatal(err)
	}
	final, _, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("journal not clean after resume+append: %v", err)
	}
	if len(final.Cells) != 2 {
		t.Fatalf("final journal has %d cells, want 2", len(final.Cells))
	}
	if !reflect.DeepEqual(final.Cells[1].State, cp.Cells[1].State) {
		t.Fatalf("re-appended cell state = %+v, want %+v", final.Cells[1].State, cp.Cells[1].State)
	}
}

// TestJournalCorruptCRC: a bit flip inside a cell frame must fail that
// frame's checksum and surface as a torn tail at the frame's offset.
func TestJournalCorruptCRC(t *testing.T) {
	cp := sampleCheckpoint()
	path := journalPath(t)
	j, err := CreateJournal(path, cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cp.Cells {
		if err := j.Append(cell); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the first cell frame's payload.
	raw[headerEnd.Size()+20] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, validLen, err := LoadJournal(path)
	if !errors.Is(err, ErrJournalTorn) {
		t.Fatalf("want ErrJournalTorn for corrupted frame, got %v", err)
	}
	if len(got.Cells) != 0 {
		t.Fatalf("corrupted first cell yields %d cells, want 0", len(got.Cells))
	}
	if validLen != headerEnd.Size() {
		t.Fatalf("valid length %d, want header end %d", validLen, headerEnd.Size())
	}
}

// TestJournalRejectsNonJournal: a dataset snapshot or random bytes are
// not a journal and must be rejected by name.
func TestJournalRejectsNonJournal(t *testing.T) {
	path := journalPath(t)
	var buf bytes.Buffer
	if err := Save(&buf, sampleDataset(), FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadJournal(path); err == nil || !strings.Contains(err.Error(), "not a checkpoint journal") {
		t.Fatalf("snapshot accepted as journal: %v", err)
	}
}
