package store

import (
	"net/http"
	"net/url"
	"testing"
	"time"
)

// TestFlattenFlowAllocations pins the per-flow allocation cost of the
// streaming flow encoder. The one-shot encoder allocated two flattened
// header maps, a flowJSON record, and the marshal output per flow; the
// flowEncoder reuses all of them, leaving only encoding/json's internal
// per-map key-sorting slices. The bound is deliberately a hard ceiling:
// if a change re-introduces per-flow maps or clones, this fails before
// any benchmark does.
func TestFlattenFlowAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; the pin only holds in normal builds")
	}
	u, _ := url.Parse("https://cdn.tracker.example.de/pixel?c=42&id=abcdef")
	f := mkFlow("", "Das Erste", true)
	f.URL = u
	f.ID = 123
	f.Time = time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC)
	f.RequestHeaders = http.Header{
		"User-Agent": {"Mozilla/5.0 (Web0S; SmartTV)"},
		"Referer":    {"https://app.daserste.example.de/index.html"},
		"Accept":     {"image/gif", "image/png"},
	}
	f.ResponseHeaders = http.Header{
		"Content-Type": {"image/gif"},
		"Set-Cookie":   {"uid=1; Path=/", "sess=2; Path=/"},
	}
	f.ResponseSize = 35

	fe := newFlowEncoder()
	// Warm up the encoder's buffer and scratch maps once.
	if err := fe.append(f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		fe.buf.Reset()
		if err := fe.append(f); err != nil {
			t.Fatal(err)
		}
	})
	// encoding/json's map encoder allocates per non-empty map (a sort
	// slice plus per-key bookkeeping); with the record, the two header
	// maps, and the buffer reused, those internals are all that remains —
	// measured 14 for this two-map, five-key flow. The one-shot encoder
	// paid ~10 more on top: two fresh maps, their entries, the flowJSON
	// record, and the Marshal output slice, for every flow.
	const maxAllocs = 14
	if allocs > maxAllocs {
		t.Fatalf("flowEncoder.append allocates %.1f objects per flow, want <= %d", allocs, maxAllocs)
	}
	t.Logf("flowEncoder.append: %.1f allocs per flow", allocs)

	// flattenInto itself must be allocation-free on the reused map.
	dst := make(map[string]string, 8)
	flat := testing.AllocsPerRun(200, func() {
		_ = flattenInto(dst, f.RequestHeaders)
	})
	if flat > 1 {
		t.Fatalf("flattenInto allocates %.1f objects per call, want <= 1 (the multi-value join)", flat)
	}
}
