package store

import (
	"context"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// mkCookieFlow is mkFlow plus a Set-Cookie response header.
func mkCookieFlow(rawURL, channel, setCookie string) *proxy.Flow {
	f := mkFlow(rawURL, channel, false)
	f.ResponseHeaders = http.Header{
		"Content-Type": []string{"text/html"},
		"Set-Cookie":   []string{setCookie},
	}
	f.ResponseSize = 2048
	return f
}

// indexDataset exercises every aggregate: mixed schemes, an unattributed
// flow, cookies from first and third parties, and a "tracker" host whose
// flows the test classifier flags.
func indexDataset() *Dataset {
	ds := sampleDataset()
	run := ds.Runs[0]
	run.Flows = append(run.Flows,
		mkCookieFlow("http://tracker.example/c", "KiKA", "uid=abc123"),
		mkCookieFlow("http://a.de/first", "KiKA", "sess=1"),
		mkCookieFlow("http://tracker.example/u", "", "ghost=1"), // unattributed
	)
	return ds
}

// testIndexConfig flags every flow on host tracker.example as a tracking
// request (Pi-hole bit) and as a known tracker for first-party candidacy.
func testIndexConfig(parallelism int) IndexConfig {
	return IndexConfig{
		Classify: func(f *proxy.Flow, url string) FlowKind {
			if strings.Contains(url, "tracker.example") {
				return FlowOnPiHole
			}
			return 0
		},
		KnownTrackerMask: FlowOnPiHole,
		Parallelism:      parallelism,
	}
}

func TestBuildIndexAggregates(t *testing.T) {
	ds := indexDataset()
	ix, err := BuildIndex(context.Background(), ds, testIndexConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.FlowCount(); got != 8 {
		t.Fatalf("FlowCount = %d, want 8", got)
	}
	if !reflect.DeepEqual(ix.Channels, ds.ChannelNames()) {
		t.Errorf("Channels %v != ChannelNames %v", ix.Channels, ds.ChannelNames())
	}
	r0 := ix.Runs[0]
	if r0.PlainRequests != 6 || r0.HTTPSRequests != 1 {
		t.Errorf("scheme split = %d/%d, want 6/1", r0.PlainRequests, r0.HTTPSRequests)
	}
	if r0.OnPiHole != 2 {
		t.Errorf("OnPiHole = %d, want 2 (tracker flows incl. unattributed)", r0.OnPiHole)
	}
	// Set-Cookie counting includes the unattributed flow…
	if r0.SetCookieFlows != 3 || r0.SetCookieTrackingFlows != 2 {
		t.Errorf("set-cookie flows = %d/%d, want 3/2", r0.SetCookieFlows, r0.SetCookieTrackingFlows)
	}
	// …but SetEvents only cover attributed flows.
	if len(r0.SetEvents) != 2 {
		t.Fatalf("SetEvents = %d, want 2", len(r0.SetEvents))
	}
	// First party of KiKA is a.de (tracker.example is masked out even
	// though its flows exist); so the tracker cookie is third-party and
	// the a.de cookie first-party.
	if fp := ix.FirstParty["KiKA"]; fp != "a.de" {
		t.Errorf("FirstParty[KiKA] = %q, want a.de", fp)
	}
	var tp, fpc int
	for _, e := range ix.SetEvents {
		if e.ThirdParty {
			tp++
		} else {
			fpc++
		}
	}
	if tp != 1 || fpc != 1 {
		t.Errorf("third/first cookie events = %d/%d, want 1/1", tp, fpc)
	}
	// Tracking aggregates: only the attributed tracker flow counts.
	cs := ix.PerChannelTracking["KiKA"]
	if cs == nil || cs.TrackingRequests != 1 || cs.TrackerCount() != 1 {
		t.Errorf("PerChannelTracking[KiKA] = %+v, want 1 request / 1 tracker", cs)
	}
	if got := ix.Runs[0].TrackingByChannel["KiKA"]; got != 1 {
		t.Errorf("TrackingByChannel[KiKA] = %d, want 1", got)
	}
	// Memoized per-flow lookups.
	f := ds.Runs[0].Flows[0]
	if ix.URL(f) != f.URL.String() || ix.Host(f) != f.Host() {
		t.Error("memoized URL/Host mismatch")
	}
	if ix.Party(f) != "a.de" {
		t.Errorf("Party = %q, want a.de", ix.Party(f))
	}
	if ix.IsTracking(f) {
		t.Error("a.de flow should not be tracking")
	}
	// Unindexed flows resolve to zero values.
	other := mkFlow("http://zzz.de/", "KiKA", false)
	if ix.Kind(other) != 0 || ix.URL(other) != "" {
		t.Error("unindexed flow should yield zero values")
	}
}

// TestBuildIndexDeterministicAcrossParallelism: the assembled index must
// be identical for every worker count.
func TestBuildIndexDeterministicAcrossParallelism(t *testing.T) {
	ds := indexDataset()
	base, err := BuildIndex(context.Background(), ds, testIndexConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 8} {
		ix, err := BuildIndex(context.Background(), ds, testIndexConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Runs, ix.Runs) {
			t.Errorf("Runs differ at Parallelism=%d", n)
		}
		if !reflect.DeepEqual(base.SetEvents, ix.SetEvents) {
			t.Errorf("SetEvents differ at Parallelism=%d", n)
		}
		if !reflect.DeepEqual(base.FirstParty, ix.FirstParty) {
			t.Errorf("FirstParty differs at Parallelism=%d", n)
		}
		if !reflect.DeepEqual(base.Window, ix.Window) {
			t.Errorf("Window differs at Parallelism=%d", n)
		}
	}
}

func TestBuildIndexCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildIndex(ctx, indexDataset(), testIndexConfig(4)); err == nil {
		t.Fatal("expected context error")
	}
}

func TestBuildIndexEmptyDataset(t *testing.T) {
	ix, err := BuildIndex(context.Background(), &Dataset{}, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.FlowCount() != 0 {
		t.Fatal("expected empty index")
	}
	// Flow-less datasets fall back to the paper's measurement period.
	if ix.Window.Start.IsZero() || !ix.Window.End.After(ix.Window.Start) {
		t.Errorf("fallback window not set: %+v", ix.Window)
	}
	if ix.IsTracking(mkFlow("http://x.de/", "", false)) {
		t.Error("unindexed flow reported as tracking")
	}
}

func TestFlowKindTracking(t *testing.T) {
	for _, k := range []FlowKind{FlowPixel, FlowFingerprint, FlowOnEasyList, FlowOnEasyPrivacy, FlowOnPiHole} {
		if !k.Tracking() {
			t.Errorf("kind %b should be tracking", k)
		}
	}
	for _, k := range []FlowKind{0, FlowOnPerflyst, FlowOnKamran} {
		if k.Tracking() {
			t.Errorf("kind %b should not be tracking (comparison lists are baselines)", k)
		}
	}
}
