package store

// This file is the analysis side's answer to the sharded measurement
// engine: a single indexing pass over the dataset that every section
// analyzer shares. The paper's evaluation (Sections V-VII) asks a dozen
// independent questions of the same 457k-request corpus; answering each
// question with its own dataset walk re-classifies every flow against the
// filter lists a dozen times.
//
// BuildIndex is columnar (see columns.go): flows are scanned in parallel
// chunks into interned string tables and typed per-row columns, the
// expensive pure-string work (filter-list matching, eTLD+1) runs once per
// *distinct* URL/host instead of once per flow, and every shared aggregate
// (first parties, Set-Cookie events, per-channel tracking statistics,
// per-run traffic and list-hit counts, the measurement window) is then
// assembled in one deterministic serial fold over the columns — so an
// Index built with any worker count is identical, byte for byte. The
// pre-columnar row pipeline survives as BuildIndexReference
// (index_reference.go), the oracle of the differential equivalence suite.

import (
	"context"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// FlowKind is a bit set recording why (and by which list) a flow was
// flagged during indexing. The bits cover both the paper's tracking
// definition (pixel/fingerprint heuristics plus the three Web filter
// lists) and the smart-TV comparison lists of Section V-D, so one
// classification pass serves Table III, the smart-TV comparison, and
// every downstream "is this tracking?" question.
type FlowKind uint32

// FlowKind bits.
const (
	FlowPixel FlowKind = 1 << iota
	FlowFingerprint
	FlowOnEasyList
	FlowOnEasyPrivacy
	FlowOnPiHole
	FlowOnPerflyst
	FlowOnKamran
)

// flowTrackingMask is the paper's tracking definition: any heuristic hit
// or a hit on one of the three Web filter lists. The smart-TV lists are
// comparison baselines and deliberately excluded.
const flowTrackingMask = FlowPixel | FlowFingerprint | FlowOnEasyList | FlowOnEasyPrivacy | FlowOnPiHole

// Tracking reports whether the flow counts as a tracking request under
// the paper's definition (Section V-D).
func (k FlowKind) Tracking() bool { return k&flowTrackingMask != 0 }

// IndexConfig wires the analysis classifiers into BuildIndex without a
// package cycle: the tracking package (which imports store) supplies the
// classification as closures.
//
// The classifier comes in two shapes. The split form — ClassifyURL for
// bits that are a pure function of the URL string (filter-list matches)
// plus ClassifyFlow for bits that need the full flow (response-size and
// body heuristics) — lets the columnar build evaluate the URL part once
// per distinct URL, which is where nearly all indexing time went. The
// legacy whole-flow Classify form is still honored (evaluated once per
// flow) when neither split field is set.
type IndexConfig struct {
	// ClassifyURL returns the kind bits determined by the URL alone.
	// Evaluated once per distinct URL; must be safe for concurrent use.
	ClassifyURL func(url string) FlowKind
	// ClassifyFlow returns the kind bits that need the whole flow
	// (status, response size, body). Evaluated once per flow; must be
	// safe for concurrent use.
	ClassifyFlow func(f *proxy.Flow) FlowKind
	// Classify is the legacy whole-flow classifier: url is the flow's
	// pre-rendered URL string. Used only when both split fields are nil;
	// nil classifies every flow as 0. Must be safe for concurrent use.
	Classify func(f *proxy.Flow, url string) FlowKind
	// KnownTrackerMask excludes flows from first-party candidacy: a flow
	// whose kind intersects the mask is skipped by the Section V-A
	// first-party rule (the filter-list correction for trackers encoded
	// directly into the broadcast signal).
	KnownTrackerMask FlowKind
	// Parallelism bounds the worker goroutines of the chunked column
	// build (<= 1 runs it on the calling goroutine). The assembled index
	// is byte-identical for every value.
	Parallelism int
}

// TimeWindow is the measurement window spanned by the dataset's flows.
type TimeWindow struct {
	Start, End time.Time
}

// Coverage is the analysis side's view of a degraded campaign: how many
// runs actually measured each channel, and how much of the channel list
// the resilient engine had to fail, skip, or quarantine. Section analyzers
// are pure folds over the flows that exist, so partial coverage never
// breaks them — Coverage makes the gaps visible instead of silent.
type Coverage struct {
	// Runs is the number of runs in the dataset.
	Runs int
	// ChannelRuns maps channel name -> runs that measured the channel
	// (ok outcomes; for datasets predating outcome tracking, runs with
	// recorded channel metadata).
	ChannelRuns map[string]int
	// Failed, Skipped, and Quarantined total the non-ok outcome records
	// across all runs.
	Failed, Skipped, Quarantined int
	// Partial lists channels measured by fewer runs than Runs, in
	// canonical (first-appearance) order — including channels that never
	// produced data at all but appear in outcome records.
	Partial []string
}

// Complete reports whether every known channel was measured in every run.
func (c *Coverage) Complete() bool { return len(c.Partial) == 0 }

// CookieSetEvent is one observed Set-Cookie, attributed to a channel and
// party. It lives in store (rather than the cookies package) so the index
// can collect events during its single pass; internal/cookies aliases it
// as cookies.SetEvent.
type CookieSetEvent struct {
	Run     RunName
	Channel string
	// Party is the eTLD+1 of the setting host.
	Party string
	Host  string
	Name  string
	Value string
	// ThirdParty is true when Party differs from the channel's first party.
	ThirdParty bool
}

// ChannelTracking aggregates tracking per channel — the basis of Fig. 6
// and the channel-level analyses. internal/tracking aliases it as
// tracking.ChannelStats.
type ChannelTracking struct {
	Channel          string
	TrackingRequests int
	Trackers         map[string]struct{} // distinct tracker eTLD+1s
}

// TrackerCount returns the number of distinct trackers contacted.
func (cs *ChannelTracking) TrackerCount() int { return len(cs.Trackers) }

// RunIndex holds one run's share of the index.
type RunIndex struct {
	// PlainRequests/HTTPSRequests split the run's flows by scheme.
	PlainRequests int
	HTTPSRequests int
	// Per-list hit counts and heuristic detections (Table III and the
	// smart-TV list comparison).
	OnPiHole           int
	OnEasyList         int
	OnEasyPrivacy      int
	OnPerflyst         int
	OnKamran           int
	TrackingPixels     int
	FingerprintScripts int
	// SetCookieFlows counts flows carrying at least one Set-Cookie;
	// SetCookieTrackingFlows those among them labeled tracking.
	SetCookieFlows         int
	SetCookieTrackingFlows int
	// FlowsByChannel groups the run's attributed flows by channel.
	FlowsByChannel map[string][]*proxy.Flow
	// TrackingByChannel counts the run's tracking requests per channel.
	TrackingByChannel map[string]int
	// SetEvents are the run's attributed Set-Cookie observations, in flow
	// order.
	SetEvents []CookieSetEvent
}

// HTTPSShare returns the fraction of the run's requests that were HTTPS.
func (r *RunIndex) HTTPSShare() float64 {
	total := r.PlainRequests + r.HTTPSRequests
	if total == 0 {
		return 0
	}
	return float64(r.HTTPSRequests) / float64(total)
}

// Index is the shared single-pass view of a dataset that the section
// analyzers consume instead of re-walking Dataset.Runs. All exported
// collections are read-only after BuildIndex returns and safe for
// concurrent readers.
type Index struct {
	Dataset *Dataset
	// Window spans the earliest and latest flow timestamps (falling back
	// to the paper's measurement period for flow-less datasets).
	Window TimeWindow
	// FirstParty maps channel name -> first-party eTLD+1 (Section V-A
	// rule with the filter-list correction).
	FirstParty map[string]string
	// Channels is the union of channel names across runs, in dataset
	// order (first appearance wins), matching Dataset.ChannelNames.
	Channels []string
	// Runs holds the per-run aggregates, aligned with Dataset.Runs.
	Runs []RunIndex
	// SetEvents concatenates every run's attributed Set-Cookie events in
	// dataset order.
	SetEvents []CookieSetEvent
	// Coverage reports how completely the runs measured the channel list
	// (always non-nil; see Coverage).
	Coverage *Coverage
	// PerChannelTracking aggregates tracking per channel across runs;
	// only channels with at least one tracking request appear.
	PerChannelTracking map[string]*ChannelTracking
	// FlowsByParty groups every flow (attributed or not) by the eTLD+1
	// of its request host.
	FlowsByParty map[string][]*proxy.Flow

	flowIdx map[*proxy.Flow]int32
	// Exactly one of the two representations is set: cols for columnar
	// builds (BuildIndex), meta for the row-oriented reference
	// (BuildIndexReference). The exported aggregates above are identical
	// either way.
	cols  *Columns
	meta  []flowMeta
	stats *BuildStats
}

// indexChunk is the flow-count granularity of the parallel column build:
// large enough to amortize scheduling, small enough to balance the tail.
// Chunk boundaries are fixed by this constant alone — never by the worker
// count — which is what keeps chunked results mergeable in deterministic
// order.
const indexChunk = 512

// BuildIndex classifies every distinct URL once, scans the flows into
// interned columns in parallel chunks, and assembles the shared aggregates
// in a single deterministic fold over the columns. A cancelled context
// aborts the build and returns the context's error.
func BuildIndex(ctx context.Context, ds *Dataset, cfg IndexConfig) (*Index, error) {
	cols, cells, stats, err := buildColumns(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	rows := cols.Rows()
	ix := &Index{
		Dataset:            ds,
		FirstParty:         make(map[string]string),
		PerChannelTracking: make(map[string]*ChannelTracking),
		FlowsByParty:       make(map[string][]*proxy.Flow),
		flowIdx:            make(map[*proxy.Flow]int32, rows),
		cols:               cols,
		stats:              stats,
	}
	// The seeded prefix of the channel table is exactly the metadata
	// channel union in dataset order.
	for id := 0; id < cols.MetaChannels; id++ {
		ix.Channels = append(ix.Channels, cols.Channels.String(int32(id)))
	}

	// The fold below replicates the reference assembly row for row, but
	// keys every per-channel / per-party accumulator by dense ID (slice
	// index) instead of by string, materializing the string-keyed maps
	// once at the end.
	nChan := cols.Channels.Len()
	nParty := cols.Parties.Len()
	type fpCand struct {
		t     int64
		party int32
		ok    bool
	}
	best := make([]fpCand, nChan)
	type chanTrack struct {
		requests int
		trackers map[int32]struct{}
	}
	track := make([]chanTrack, nChan)
	partyRows := make([][]*proxy.Flow, nParty)
	var lo, hi time.Time
	row := 0
	for _, run := range ds.Runs {
		ri := RunIndex{
			FlowsByChannel:    make(map[string][]*proxy.Flow),
			TrackingByChannel: make(map[string]int),
		}
		chanFlows := make([][]*proxy.Flow, nChan)
		chanTracking := make([]int, nChan)
		end := row + len(run.Flows)
		for i := row; i < end; i++ {
			f := cols.Flows[i]
			ix.flowIdx[f] = int32(i)
			if lo.IsZero() || f.Time.Before(lo) {
				lo = f.Time
			}
			if f.Time.After(hi) {
				hi = f.Time
			}
			kind := cols.Kind[i]
			if cols.HTTPS[i] {
				ri.HTTPSRequests++
			} else {
				ri.PlainRequests++
			}
			if kind&FlowOnPiHole != 0 {
				ri.OnPiHole++
			}
			if kind&FlowOnEasyList != 0 {
				ri.OnEasyList++
			}
			if kind&FlowOnEasyPrivacy != 0 {
				ri.OnEasyPrivacy++
			}
			if kind&FlowOnPerflyst != 0 {
				ri.OnPerflyst++
			}
			if kind&FlowOnKamran != 0 {
				ri.OnKamran++
			}
			if kind&FlowPixel != 0 {
				ri.TrackingPixels++
			}
			if kind&FlowFingerprint != 0 {
				ri.FingerprintScripts++
			}
			if cols.HasCookies[i] {
				ri.SetCookieFlows++
				if kind.Tracking() {
					ri.SetCookieTrackingFlows++
				}
			}
			pid := cols.PartyID[i]
			partyRows[pid] = append(partyRows[pid], f)
			ch := cols.ChannelID[i]
			if ch < 0 {
				continue
			}
			chanFlows[ch] = append(chanFlows[ch], f)
			if kind&cfg.KnownTrackerMask == 0 {
				ts := cols.TimeNS[i]
				if b := &best[ch]; !b.ok || ts < b.t {
					*b = fpCand{t: ts, party: pid, ok: true}
				}
			}
			if kind.Tracking() {
				t := &track[ch]
				if t.trackers == nil {
					t.trackers = make(map[int32]struct{})
				}
				t.requests++
				t.trackers[pid] = struct{}{}
				chanTracking[ch]++
			}
			for a, b := cols.CookieOff[i], cols.CookieOff[i+1]; a < b; a++ {
				ri.SetEvents = append(ri.SetEvents, CookieSetEvent{
					Run:     run.Name,
					Channel: f.Channel,
					Party:   cols.Parties.String(pid),
					Host:    cols.Hosts.String(cols.HostID[i]),
					Name:    cells[a].name,
					Value:   cells[a].value,
				})
			}
		}
		row = end
		for id, fl := range chanFlows {
			if fl != nil {
				ri.FlowsByChannel[cols.Channels.String(int32(id))] = fl
			}
		}
		for id, n := range chanTracking {
			if n > 0 {
				ri.TrackingByChannel[cols.Channels.String(int32(id))] = n
			}
		}
		ix.Runs = append(ix.Runs, ri)
	}
	if lo.IsZero() {
		lo = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
		hi = time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	}
	ix.Window = TimeWindow{Start: lo, End: hi}
	ix.Coverage = buildCoverage(ds)
	for id := range best {
		if best[id].ok {
			ix.FirstParty[cols.Channels.String(int32(id))] = cols.Parties.String(best[id].party)
		}
	}
	for id := range track {
		t := &track[id]
		if t.requests == 0 {
			continue
		}
		cs := &ChannelTracking{
			Channel:          cols.Channels.String(int32(id)),
			TrackingRequests: t.requests,
			Trackers:         make(map[string]struct{}, len(t.trackers)),
		}
		for pid := range t.trackers {
			cs.Trackers[cols.Parties.String(pid)] = struct{}{}
		}
		ix.PerChannelTracking[cs.Channel] = cs
	}
	for pid, fl := range partyRows {
		if fl != nil {
			ix.FlowsByParty[cols.Parties.String(int32(pid))] = fl
		}
	}
	// Third-party flags resolve only after the full first-party map is
	// known; patch them in per run, then expose the concatenation.
	for r := range ix.Runs {
		events := ix.Runs[r].SetEvents
		for j := range events {
			fp := ix.FirstParty[events[j].Channel]
			events[j].ThirdParty = fp != "" && events[j].Party != fp
		}
		ix.SetEvents = append(ix.SetEvents, events...)
	}
	return ix, nil
}

// buildCoverage folds every run's outcome records (falling back to
// recorded channel metadata for pre-outcome datasets) into the per-channel
// coverage report.
func buildCoverage(ds *Dataset) *Coverage {
	cov := &Coverage{Runs: len(ds.Runs), ChannelRuns: make(map[string]int)}
	var order []string
	seen := make(map[string]struct{})
	note := func(name string) {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			order = append(order, name)
		}
	}
	for _, run := range ds.Runs {
		if len(run.Outcomes) > 0 {
			for _, o := range run.Outcomes {
				note(o.Channel)
				switch o.Status {
				case OutcomeOK:
					cov.ChannelRuns[o.Channel]++
				case OutcomeFailed:
					cov.Failed++
				case OutcomeSkipped:
					cov.Skipped++
				case OutcomeQuarantined:
					cov.Quarantined++
				}
			}
			continue
		}
		for _, c := range run.Channels {
			note(c.Name)
			cov.ChannelRuns[c.Name]++
		}
	}
	for _, name := range order {
		if cov.ChannelRuns[name] < cov.Runs {
			cov.Partial = append(cov.Partial, name)
		}
	}
	return cov
}

// Columns exposes the columnar representation for range-scanning section
// analyzers. Nil for indexes built with BuildIndexReference.
func (ix *Index) Columns() *Columns { return ix.cols }

// BuildStats reports how the columnar build ran (nil for reference
// builds). Telemetry only — carries no analysis data.
func (ix *Index) BuildStats() *BuildStats { return ix.stats }

// FlowCount returns the number of indexed flows.
func (ix *Index) FlowCount() int {
	if ix.cols != nil {
		return ix.cols.Rows()
	}
	return len(ix.meta)
}

// Row returns the dataset-order row of an indexed flow (false for flows
// not part of the indexed dataset).
func (ix *Index) Row(f *proxy.Flow) (int32, bool) {
	i, ok := ix.flowIdx[f]
	return i, ok
}

// Kind returns the classification bits of an indexed flow (0 for flows
// not part of the indexed dataset).
func (ix *Index) Kind(f *proxy.Flow) FlowKind {
	i, ok := ix.flowIdx[f]
	if !ok {
		return 0
	}
	if ix.cols != nil {
		return ix.cols.Kind[i]
	}
	return ix.meta[i].kind
}

// IsTracking reports whether the flow was labeled a tracking request.
// Usable wherever a func(*proxy.Flow) bool predicate is expected.
func (ix *Index) IsTracking(f *proxy.Flow) bool { return ix.Kind(f).Tracking() }

// URL returns the flow's memoized URL string ("" if unindexed).
func (ix *Index) URL(f *proxy.Flow) string {
	i, ok := ix.flowIdx[f]
	if !ok {
		return ""
	}
	if ix.cols != nil {
		return ix.cols.URL(int(i))
	}
	return ix.meta[i].url
}

// Party returns the flow's memoized request-host eTLD+1 ("" if unindexed).
func (ix *Index) Party(f *proxy.Flow) string {
	i, ok := ix.flowIdx[f]
	if !ok {
		return ""
	}
	if ix.cols != nil {
		return ix.cols.Party(int(i))
	}
	return ix.meta[i].party
}

// Host returns the flow's memoized request host ("" if unindexed).
func (ix *Index) Host(f *proxy.Flow) string {
	i, ok := ix.flowIdx[f]
	if !ok {
		return ""
	}
	if ix.cols != nil {
		return ix.cols.Host(int(i))
	}
	return ix.meta[i].host
}
