package store

// This file is the analysis side's answer to the sharded measurement
// engine: a single indexing pass over the dataset that every section
// analyzer shares. The paper's evaluation (Sections V-VII) asks a dozen
// independent questions of the same 457k-request corpus; answering each
// question with its own dataset walk re-classifies every flow against the
// filter lists a dozen times. BuildIndex instead classifies each flow
// exactly once — optionally fanning the pure per-flow work out over
// worker goroutines — and assembles every shared aggregate (first
// parties, Set-Cookie events, per-channel tracking statistics, per-run
// traffic and list-hit counts, the measurement window) in one
// deterministic serial sweep, so an Index built with any worker count is
// identical.

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// FlowKind is a bit set recording why (and by which list) a flow was
// flagged during indexing. The bits cover both the paper's tracking
// definition (pixel/fingerprint heuristics plus the three Web filter
// lists) and the smart-TV comparison lists of Section V-D, so one
// classification pass serves Table III, the smart-TV comparison, and
// every downstream "is this tracking?" question.
type FlowKind uint32

// FlowKind bits.
const (
	FlowPixel FlowKind = 1 << iota
	FlowFingerprint
	FlowOnEasyList
	FlowOnEasyPrivacy
	FlowOnPiHole
	FlowOnPerflyst
	FlowOnKamran
)

// flowTrackingMask is the paper's tracking definition: any heuristic hit
// or a hit on one of the three Web filter lists. The smart-TV lists are
// comparison baselines and deliberately excluded.
const flowTrackingMask = FlowPixel | FlowFingerprint | FlowOnEasyList | FlowOnEasyPrivacy | FlowOnPiHole

// Tracking reports whether the flow counts as a tracking request under
// the paper's definition (Section V-D).
func (k FlowKind) Tracking() bool { return k&flowTrackingMask != 0 }

// IndexConfig wires the analysis classifiers into BuildIndex without a
// package cycle: the tracking package (which imports store) supplies the
// per-flow classification as a closure.
type IndexConfig struct {
	// Classify returns the FlowKind bits of a flow. url is the flow's
	// pre-rendered URL string (computed once per flow by the index).
	// Must be safe for concurrent use; nil classifies every flow as 0.
	Classify func(f *proxy.Flow, url string) FlowKind
	// KnownTrackerMask excludes flows from first-party candidacy: a flow
	// whose kind intersects the mask is skipped by the Section V-A
	// first-party rule (the filter-list correction for trackers encoded
	// directly into the broadcast signal).
	KnownTrackerMask FlowKind
	// Parallelism bounds the worker goroutines of the classification
	// phase (<= 1 runs it on the calling goroutine). The assembled index
	// is byte-identical for every value.
	Parallelism int
}

// TimeWindow is the measurement window spanned by the dataset's flows.
type TimeWindow struct {
	Start, End time.Time
}

// Coverage is the analysis side's view of a degraded campaign: how many
// runs actually measured each channel, and how much of the channel list
// the resilient engine had to fail, skip, or quarantine. Section analyzers
// are pure folds over the flows that exist, so partial coverage never
// breaks them — Coverage makes the gaps visible instead of silent.
type Coverage struct {
	// Runs is the number of runs in the dataset.
	Runs int
	// ChannelRuns maps channel name -> runs that measured the channel
	// (ok outcomes; for datasets predating outcome tracking, runs with
	// recorded channel metadata).
	ChannelRuns map[string]int
	// Failed, Skipped, and Quarantined total the non-ok outcome records
	// across all runs.
	Failed, Skipped, Quarantined int
	// Partial lists channels measured by fewer runs than Runs, in
	// canonical (first-appearance) order — including channels that never
	// produced data at all but appear in outcome records.
	Partial []string
}

// Complete reports whether every known channel was measured in every run.
func (c *Coverage) Complete() bool { return len(c.Partial) == 0 }

// CookieSetEvent is one observed Set-Cookie, attributed to a channel and
// party. It lives in store (rather than the cookies package) so the index
// can collect events during its single pass; internal/cookies aliases it
// as cookies.SetEvent.
type CookieSetEvent struct {
	Run     RunName
	Channel string
	// Party is the eTLD+1 of the setting host.
	Party string
	Host  string
	Name  string
	Value string
	// ThirdParty is true when Party differs from the channel's first party.
	ThirdParty bool
}

// ChannelTracking aggregates tracking per channel — the basis of Fig. 6
// and the channel-level analyses. internal/tracking aliases it as
// tracking.ChannelStats.
type ChannelTracking struct {
	Channel          string
	TrackingRequests int
	Trackers         map[string]struct{} // distinct tracker eTLD+1s
}

// TrackerCount returns the number of distinct trackers contacted.
func (cs *ChannelTracking) TrackerCount() int { return len(cs.Trackers) }

// RunIndex holds one run's share of the index.
type RunIndex struct {
	// PlainRequests/HTTPSRequests split the run's flows by scheme.
	PlainRequests int
	HTTPSRequests int
	// Per-list hit counts and heuristic detections (Table III and the
	// smart-TV list comparison).
	OnPiHole           int
	OnEasyList         int
	OnEasyPrivacy      int
	OnPerflyst         int
	OnKamran           int
	TrackingPixels     int
	FingerprintScripts int
	// SetCookieFlows counts flows carrying at least one Set-Cookie;
	// SetCookieTrackingFlows those among them labeled tracking.
	SetCookieFlows         int
	SetCookieTrackingFlows int
	// FlowsByChannel groups the run's attributed flows by channel.
	FlowsByChannel map[string][]*proxy.Flow
	// TrackingByChannel counts the run's tracking requests per channel.
	TrackingByChannel map[string]int
	// SetEvents are the run's attributed Set-Cookie observations, in flow
	// order.
	SetEvents []CookieSetEvent
}

// HTTPSShare returns the fraction of the run's requests that were HTTPS.
func (r *RunIndex) HTTPSShare() float64 {
	total := r.PlainRequests + r.HTTPSRequests
	if total == 0 {
		return 0
	}
	return float64(r.HTTPSRequests) / float64(total)
}

// flowMeta is the per-flow result of the (parallelizable) classification
// phase: everything derivable from the flow alone.
type flowMeta struct {
	url     string
	host    string
	party   string
	kind    FlowKind
	cookies []*http.Cookie
}

// Index is the shared single-pass view of a dataset that the section
// analyzers consume instead of re-walking Dataset.Runs. All exported
// collections are read-only after BuildIndex returns and safe for
// concurrent readers.
type Index struct {
	Dataset *Dataset
	// Window spans the earliest and latest flow timestamps (falling back
	// to the paper's measurement period for flow-less datasets).
	Window TimeWindow
	// FirstParty maps channel name -> first-party eTLD+1 (Section V-A
	// rule with the filter-list correction).
	FirstParty map[string]string
	// Channels is the union of channel names across runs, in dataset
	// order (first appearance wins), matching Dataset.ChannelNames.
	Channels []string
	// Runs holds the per-run aggregates, aligned with Dataset.Runs.
	Runs []RunIndex
	// SetEvents concatenates every run's attributed Set-Cookie events in
	// dataset order.
	SetEvents []CookieSetEvent
	// Coverage reports how completely the runs measured the channel list
	// (always non-nil; see Coverage).
	Coverage *Coverage
	// PerChannelTracking aggregates tracking per channel across runs;
	// only channels with at least one tracking request appear.
	PerChannelTracking map[string]*ChannelTracking
	// FlowsByParty groups every flow (attributed or not) by the eTLD+1
	// of its request host.
	FlowsByParty map[string][]*proxy.Flow

	flowIdx map[*proxy.Flow]int32
	meta    []flowMeta
}

// indexChunk is the flow-count granularity of the parallel classification
// phase: large enough to amortize scheduling, small enough to balance the
// tail.
const indexChunk = 512

// BuildIndex classifies every flow once and assembles the shared
// aggregates in a single deterministic pass over the dataset. A cancelled
// context aborts the build and returns the context's error.
func BuildIndex(ctx context.Context, ds *Dataset, cfg IndexConfig) (*Index, error) {
	var flows []*proxy.Flow
	for _, r := range ds.Runs {
		flows = append(flows, r.Flows...)
	}
	meta := make([]flowMeta, len(flows))

	classify := func(i int) {
		f := flows[i]
		m := &meta[i]
		m.url = f.URL.String()
		m.host = f.Host()
		m.party = etld.MustRegistrableDomain(m.host)
		if cfg.Classify != nil {
			m.kind = cfg.Classify(f, m.url)
		}
		m.cookies = f.SetCookies()
	}

	workers := cfg.Parallelism
	if max := (len(flows) + indexChunk - 1) / indexChunk; workers > max {
		workers = max
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					lo := int(next.Add(1)-1) * indexChunk
					if lo >= len(flows) {
						return
					}
					hi := lo + indexChunk
					if hi > len(flows) {
						hi = len(flows)
					}
					for i := lo; i < hi; i++ {
						classify(i)
					}
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range flows {
			if i%indexChunk == 0 && ctx.Err() != nil {
				break
			}
			classify(i)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Serial assembly in dataset order: every aggregate below is a pure
	// fold over (flows, meta), so the index is independent of the worker
	// count above.
	ix := &Index{
		Dataset:            ds,
		FirstParty:         make(map[string]string),
		PerChannelTracking: make(map[string]*ChannelTracking),
		FlowsByParty:       make(map[string][]*proxy.Flow),
		flowIdx:            make(map[*proxy.Flow]int32, len(flows)),
		meta:               meta,
	}
	type fpCand struct {
		t     int64
		party string
	}
	best := make(map[string]fpCand)
	seenChan := make(map[string]struct{})
	var lo, hi time.Time
	i := int32(0)
	for _, run := range ds.Runs {
		ri := RunIndex{
			FlowsByChannel:    make(map[string][]*proxy.Flow),
			TrackingByChannel: make(map[string]int),
		}
		for _, c := range run.Channels {
			if _, ok := seenChan[c.Name]; !ok {
				seenChan[c.Name] = struct{}{}
				ix.Channels = append(ix.Channels, c.Name)
			}
		}
		for _, f := range run.Flows {
			m := &meta[i]
			ix.flowIdx[f] = i
			i++
			if lo.IsZero() || f.Time.Before(lo) {
				lo = f.Time
			}
			if f.Time.After(hi) {
				hi = f.Time
			}
			if f.HTTPS {
				ri.HTTPSRequests++
			} else {
				ri.PlainRequests++
			}
			if m.kind&FlowOnPiHole != 0 {
				ri.OnPiHole++
			}
			if m.kind&FlowOnEasyList != 0 {
				ri.OnEasyList++
			}
			if m.kind&FlowOnEasyPrivacy != 0 {
				ri.OnEasyPrivacy++
			}
			if m.kind&FlowOnPerflyst != 0 {
				ri.OnPerflyst++
			}
			if m.kind&FlowOnKamran != 0 {
				ri.OnKamran++
			}
			if m.kind&FlowPixel != 0 {
				ri.TrackingPixels++
			}
			if m.kind&FlowFingerprint != 0 {
				ri.FingerprintScripts++
			}
			if len(m.cookies) > 0 {
				ri.SetCookieFlows++
				if m.kind.Tracking() {
					ri.SetCookieTrackingFlows++
				}
			}
			ix.FlowsByParty[m.party] = append(ix.FlowsByParty[m.party], f)
			if f.Channel == "" {
				continue
			}
			ri.FlowsByChannel[f.Channel] = append(ri.FlowsByChannel[f.Channel], f)
			if m.kind&cfg.KnownTrackerMask == 0 {
				ts := f.Time.UnixNano()
				if b, ok := best[f.Channel]; !ok || ts < b.t {
					best[f.Channel] = fpCand{t: ts, party: m.party}
				}
			}
			if m.kind.Tracking() {
				cs := ix.PerChannelTracking[f.Channel]
				if cs == nil {
					cs = &ChannelTracking{Channel: f.Channel, Trackers: make(map[string]struct{})}
					ix.PerChannelTracking[f.Channel] = cs
				}
				cs.TrackingRequests++
				cs.Trackers[m.party] = struct{}{}
				ri.TrackingByChannel[f.Channel]++
			}
			for _, c := range m.cookies {
				ri.SetEvents = append(ri.SetEvents, CookieSetEvent{
					Run:     run.Name,
					Channel: f.Channel,
					Party:   m.party,
					Host:    m.host,
					Name:    c.Name,
					Value:   c.Value,
				})
			}
		}
		ix.Runs = append(ix.Runs, ri)
	}
	if lo.IsZero() {
		lo = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
		hi = time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	}
	ix.Window = TimeWindow{Start: lo, End: hi}
	ix.Coverage = buildCoverage(ds)
	for ch, c := range best {
		ix.FirstParty[ch] = c.party
	}
	// Third-party flags resolve only after the full first-party map is
	// known; patch them in per run, then expose the concatenation.
	for r := range ix.Runs {
		events := ix.Runs[r].SetEvents
		for j := range events {
			fp := ix.FirstParty[events[j].Channel]
			events[j].ThirdParty = fp != "" && events[j].Party != fp
		}
		ix.SetEvents = append(ix.SetEvents, events...)
	}
	return ix, nil
}

// buildCoverage folds every run's outcome records (falling back to
// recorded channel metadata for pre-outcome datasets) into the per-channel
// coverage report.
func buildCoverage(ds *Dataset) *Coverage {
	cov := &Coverage{Runs: len(ds.Runs), ChannelRuns: make(map[string]int)}
	var order []string
	seen := make(map[string]struct{})
	note := func(name string) {
		if _, ok := seen[name]; !ok {
			seen[name] = struct{}{}
			order = append(order, name)
		}
	}
	for _, run := range ds.Runs {
		if len(run.Outcomes) > 0 {
			for _, o := range run.Outcomes {
				note(o.Channel)
				switch o.Status {
				case OutcomeOK:
					cov.ChannelRuns[o.Channel]++
				case OutcomeFailed:
					cov.Failed++
				case OutcomeSkipped:
					cov.Skipped++
				case OutcomeQuarantined:
					cov.Quarantined++
				}
			}
			continue
		}
		for _, c := range run.Channels {
			note(c.Name)
			cov.ChannelRuns[c.Name]++
		}
	}
	for _, name := range order {
		if cov.ChannelRuns[name] < cov.Runs {
			cov.Partial = append(cov.Partial, name)
		}
	}
	return cov
}

// FlowCount returns the number of indexed flows.
func (ix *Index) FlowCount() int { return len(ix.meta) }

// Kind returns the classification bits of an indexed flow (0 for flows
// not part of the indexed dataset).
func (ix *Index) Kind(f *proxy.Flow) FlowKind {
	if i, ok := ix.flowIdx[f]; ok {
		return ix.meta[i].kind
	}
	return 0
}

// IsTracking reports whether the flow was labeled a tracking request.
// Usable wherever a func(*proxy.Flow) bool predicate is expected.
func (ix *Index) IsTracking(f *proxy.Flow) bool { return ix.Kind(f).Tracking() }

// URL returns the flow's memoized URL string ("" if unindexed).
func (ix *Index) URL(f *proxy.Flow) string {
	if i, ok := ix.flowIdx[f]; ok {
		return ix.meta[i].url
	}
	return ""
}

// Party returns the flow's memoized request-host eTLD+1 ("" if unindexed).
func (ix *Index) Party(f *proxy.Flow) string {
	if i, ok := ix.flowIdx[f]; ok {
		return ix.meta[i].party
	}
	return ""
}

// Host returns the flow's memoized request host ("" if unindexed).
func (ix *Index) Host(f *proxy.Flow) string {
	if i, ok := ix.flowIdx[f]; ok {
		return ix.meta[i].host
	}
	return ""
}
