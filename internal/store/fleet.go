package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// This file is the fleet layer of the measurement engine: the shard
// manifest that makes a persisted shard dataset self-describing, the
// content-addressed dedup tables that keep K shard loads from holding K
// copies of identical bodies and header blocks, and the manifest-verified
// merge (MergeShards) that recombines shard datasets — produced by
// independent collector processes — into the byte-identical dataset a
// single-process sharded run yields.
//
// The merge's correctness contract mirrors MergeRunShards': every rule
// depends only on the shard index and the canonical channel order, both
// recorded in the manifest, so the merged dataset is independent of which
// collector finished first, which machine it ran on, and in which order
// the shard files are handed to the merge.

// ShardManifest makes a persisted shard dataset self-describing: it pins
// the shard's position in the campaign partition, the study parameters
// that defined the world, and the canonical channel order every shard
// derived, so shards from mismatched configurations are rejected at merge
// time instead of silently producing a dataset no single-process run
// could have measured.
type ShardManifest struct {
	// Shard and Shards locate the dataset in the campaign partition: the
	// dataset holds exactly the channels at canonical indices i with
	// i % min(Shards, len(ChannelOrder)) == Shard — the same clamped
	// strided partition the in-process engine (core.Pool) uses.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Params fingerprints the study configuration. Two shards merge only
	// when their Params are identical.
	Params StudyParams `json:"params"`
	// ChannelOrder is the full canonical channel order (the funnel's
	// output), which the merge needs to interleave shard data back into
	// single-process order. Every shard of a campaign derives the same
	// order from the same seed, so each carries a complete copy.
	ChannelOrder []string `json:"channelOrder"`
	// OrderDigest is ChannelOrderDigest(ChannelOrder) — the cheap
	// cross-shard identity check.
	OrderDigest string `json:"orderDigest"`
	// Coverage summarizes the per-channel outcomes of each run the shard
	// executed, so the merge can verify the shard measured exactly its
	// assigned partition.
	Coverage []ShardRunCoverage `json:"coverage,omitempty"`
}

// AssignedChannels returns how many of the canonical order's channels the
// manifest's shard owns under the engine's clamped strided partition.
func (m *ShardManifest) AssignedChannels() int {
	return assignedChannels(len(m.ChannelOrder), m.Shard, m.Shards)
}

// assignedChannels counts the canonical indices i in [0, channels) with
// i % eff == shard, where eff is the shard count clamped exactly like
// core.Pool clamps it (to the channel count, never below 1).
func assignedChannels(channels, shard, shards int) int {
	eff := shards
	if eff > channels {
		eff = channels
	}
	if eff < 1 {
		eff = 1
	}
	if shard >= eff {
		return 0
	}
	n := 0
	for i := shard; i < channels; i += eff {
		n++
	}
	return n
}

// StudyParams is the manifest's fingerprint of everything that defines a
// campaign's results besides the partition itself. Fields are flat and
// comparable; composite configuration (run specs, fault plans) is carried
// as a digest so extending those types can never silently weaken the
// merge-time identity check.
type StudyParams struct {
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// ProbeWatchNS is the exploratory per-channel watch time in
	// nanoseconds (it shapes the funnel, hence the channel order).
	ProbeWatchNS int64 `json:"probeWatchNs"`
	// RunsDigest fingerprints the measurement-run specs (names, dates,
	// buttons, watch times, screenshot cadence).
	RunsDigest string `json:"runsDigest"`
	// FaultsDigest fingerprints the effective fault-injection config;
	// empty means the reliable world.
	FaultsDigest string `json:"faultsDigest,omitempty"`
	// Retry pins the resilience policy (attempt budgets and backoff shape
	// change which channels end failed, and on which attempt).
	Retry RetryParams `json:"retry"`
}

// RetryParams mirrors core.RetryPolicy in manifest form (store cannot
// import core).
type RetryParams struct {
	MaxAttempts     int   `json:"maxAttempts"`
	BackoffNS       int64 `json:"backoffNs"`
	BackoffMaxNS    int64 `json:"backoffMaxNs"`
	VisitDeadlineNS int64 `json:"visitDeadlineNs"`
	QuarantineAfter int   `json:"quarantineAfter"`
}

// diff returns the name of the first field in which q differs from p, or
// "" when the params are identical — the merge's error messages name the
// offending parameter instead of dumping both structs.
func (p StudyParams) diff(q StudyParams) string {
	switch {
	case p.Seed != q.Seed:
		return "seed"
	case p.Scale != q.Scale:
		return "scale"
	case p.ProbeWatchNS != q.ProbeWatchNS:
		return "probe watch time"
	case p.RunsDigest != q.RunsDigest:
		return "run specs"
	case p.FaultsDigest != q.FaultsDigest:
		return "fault config"
	case p.Retry != q.Retry:
		return "retry policy"
	}
	return ""
}

// ShardRunCoverage summarizes one run's per-channel outcomes on one shard.
type ShardRunCoverage struct {
	Run  RunName   `json:"run"`
	Date time.Time `json:"date"`
	// Channels is the number of channels the shard considered in this run
	// (its partition size); the outcome tallies below sum to it.
	Channels    int `json:"channels"`
	OK          int `json:"ok"`
	Failed      int `json:"failed,omitempty"`
	Skipped     int `json:"skipped,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
}

// CoverageFromRun tallies a run's outcome records into manifest form.
func CoverageFromRun(run *RunData) ShardRunCoverage {
	cov := ShardRunCoverage{Run: run.Name, Date: run.Date, Channels: len(run.Outcomes)}
	for _, o := range run.Outcomes {
		switch o.Status {
		case OutcomeFailed:
			cov.Failed++
		case OutcomeSkipped:
			cov.Skipped++
		case OutcomeQuarantined:
			cov.Quarantined++
		default:
			cov.OK++
		}
	}
	return cov
}

// ChannelOrderDigest returns a hex SHA-256 over a canonical channel-name
// order. Names are length-framed so the digest is injective over the list
// structure, not just the concatenation.
func ChannelOrderDigest(order []string) string {
	h := sha256.New()
	var frame [8]byte
	for _, name := range order {
		n := len(name)
		for i := range frame {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		h.Write([]byte(name))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dedup is a content-addressed table for response/request bodies and
// header blocks, shared across shard-dataset loads so that K shards
// carrying the same tracker payloads and header shapes collapse to one
// in-memory copy instead of K. Bodies are keyed by SHA-256 of their
// content, header blocks by a canonical flattened encoding. The returned
// canonical copies are shared — loaded datasets are read-only downstream,
// which is what makes the sharing safe (the snapshot loader already
// shares header maps between flows on the same grounds).
//
// A Dedup is not safe for concurrent use; the fleet loader loads shard
// files serially (each load parallelizes internally) so no lock is needed.
type Dedup struct {
	blobs   map[[sha256.Size]byte][]byte
	headers map[string]http.Header
	stats   DedupStats
}

// DedupStats reports what a Dedup table absorbed and how much it shared.
type DedupStats struct {
	// Blobs / BlobBytes count every body offered to the table;
	// BlobsShared / BlobBytesShared the subset answered from it.
	Blobs           int
	BlobsShared     int
	BlobBytes       int64
	BlobBytesShared int64
	// Headers / HeadersShared count distinct header blocks offered and
	// answered from the table.
	Headers       int
	HeadersShared int
}

// BlobRatio returns the fraction of offered body bytes that were answered
// from the table instead of retained again (0 when nothing was offered).
func (s DedupStats) BlobRatio() float64 {
	if s.BlobBytes == 0 {
		return 0
	}
	return float64(s.BlobBytesShared) / float64(s.BlobBytes)
}

// NewDedup returns an empty content-addressed dedup table.
func NewDedup() *Dedup {
	return &Dedup{
		blobs:   make(map[[sha256.Size]byte][]byte, 1024),
		headers: make(map[string]http.Header, 256),
	}
}

// Blob returns the canonical copy of b, registering it on first sight.
// Empty bodies pass through unchanged.
func (d *Dedup) Blob(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	d.stats.Blobs++
	d.stats.BlobBytes += int64(len(b))
	key := sha256.Sum256(b)
	if canon, ok := d.blobs[key]; ok {
		d.stats.BlobsShared++
		d.stats.BlobBytesShared += int64(len(b))
		return canon
	}
	d.blobs[key] = b
	return b
}

// Header returns the canonical http.Header equal to h, registering h on
// first sight. Nil and empty headers pass through unchanged.
func (d *Dedup) Header(h http.Header) http.Header {
	if len(h) == 0 {
		return h
	}
	d.stats.Headers++
	key := headerKey(h)
	if canon, ok := d.headers[key]; ok {
		d.stats.HeadersShared++
		return canon
	}
	d.headers[key] = h
	return h
}

// Stats returns the table's running tallies.
func (d *Dedup) Stats() DedupStats { return d.stats }

// headerKey builds the canonical content key of a header block: keys in
// sorted order, values framed with bytes that cannot appear in header
// text.
func headerKey(h http.Header) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(0x00)
		for _, v := range h[k] {
			b.WriteString(v)
			b.WriteByte(0x01)
		}
		b.WriteByte(0x02)
	}
	return b.String()
}

// Apply rewrites a loaded dataset in place so its bodies and header maps
// reference the table's canonical copies. The snapshot loader dedups
// during decode (per distinct table entry); Apply is the per-flow
// fallback for datasets loaded from formats without content tables
// (gzip-JSON).
func (d *Dedup) Apply(ds *Dataset) {
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			f.RequestBody = d.Blob(f.RequestBody)
			f.ResponseBody = d.Blob(f.ResponseBody)
			f.RequestHeaders = d.Header(f.RequestHeaders)
			f.ResponseHeaders = d.Header(f.ResponseHeaders)
		}
	}
}

// MergeShards verifies the shard manifests of K shard datasets and merges
// them into one complete dataset: the manifests must agree on every study
// parameter and on the canonical channel order, and together cover shards
// 0..N-1 exactly once. Runs are aligned by name and recombined through
// the canonical-order merge (MergeRunShards), so the result is
// byte-identical — Digest and all — to the dataset a single-process
// sharded run (core.Pool with Shards = N) of the same study produces,
// degraded campaigns included.
//
// The shards' telemetry snapshots and span traces are merged too (see
// telemetry.MergeShardSnapshots/MergeShardTraces): the merged dataset
// carries fleet-wide counters, events, and spans equal to the
// single-process run's, restricted to the shard slots.
//
// tele (typically an engine-controller handle) observes the per-run merge
// phases; nil disables instrumentation. Its events and spans are local to
// the merging process and are not embedded in the merged dataset (they
// may even be wall-clock-timestamped, as in hbbtv-merge). The merge is
// all-or-nothing: a cancelled ctx returns nil and the context's error.
func MergeShards(ctx context.Context, tele *telemetry.Shard, datasets []*Dataset) (*Dataset, error) {
	if len(datasets) == 0 {
		return nil, errors.New("store: merge: no shard datasets given")
	}
	for i, ds := range datasets {
		if ds == nil {
			return nil, fmt.Errorf("store: merge: dataset %d is nil", i)
		}
		if ds.Shard == nil {
			return nil, fmt.Errorf("store: merge: dataset %d has no shard manifest (not a shard dataset; measure it with -shard i/N)", i)
		}
	}

	ref := datasets[0].Shard
	n := ref.Shards
	if n < 1 {
		return nil, fmt.Errorf("store: merge: dataset 0: invalid shard count %d", n)
	}
	byShard := make([]*Dataset, n)
	for i, ds := range datasets {
		m := ds.Shard
		if m.Shards != n {
			return nil, fmt.Errorf("store: merge: manifest mismatch: dataset %d is 1 of %d shards, dataset 0 is 1 of %d", i, m.Shards, n)
		}
		if m.Shard < 0 || m.Shard >= n {
			return nil, fmt.Errorf("store: merge: dataset %d: shard index %d out of range [0, %d)", i, m.Shard, n)
		}
		if byShard[m.Shard] != nil {
			return nil, fmt.Errorf("store: merge: duplicate shard %d of %d", m.Shard, n)
		}
		if field := ref.Params.diff(m.Params); field != "" {
			return nil, fmt.Errorf("store: merge: manifest mismatch: dataset %d: %s differs from dataset 0", i, field)
		}
		if m.OrderDigest != ref.OrderDigest {
			return nil, fmt.Errorf("store: merge: manifest mismatch: dataset %d: channel order differs from dataset 0", i)
		}
		byShard[m.Shard] = ds
	}
	var missing []int
	for s := range byShard {
		if byShard[s] == nil {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("store: merge: shard coverage incomplete: missing shard(s) %v of %d", missing, n)
	}

	// Coverage cross-check: each shard's runs must have considered exactly
	// the channels its partition assigns — a shard measured with a
	// different channel list but a forged/equal order digest cannot
	// happen, but a shard file truncated by a crashed collector can.
	for s, ds := range byShard {
		want := assignedChannels(len(ref.ChannelOrder), s, n)
		for _, cov := range ds.Shard.Coverage {
			if cov.Channels != want {
				return nil, fmt.Errorf("store: merge: shard %d: run %s covers %d channel(s), its partition assigns %d",
					s, cov.Run, cov.Channels, want)
			}
		}
	}

	// Runs align by name, in first-appearance order over the shards in
	// shard order — for a complete campaign that is exactly the spec order
	// every shard executed.
	var runOrder []RunName
	seen := make(map[RunName]bool, 8)
	for _, ds := range byShard {
		for _, run := range ds.Runs {
			if !seen[run.Name] {
				seen[run.Name] = true
				runOrder = append(runOrder, run.Name)
			}
		}
	}

	out := &Dataset{}
	for _, name := range runOrder {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		shardRuns := make([]*RunData, n)
		for s, ds := range byShard {
			shardRuns[s] = ds.Run(name)
		}
		out.Runs = append(out.Runs, MergeRunShardsObserved(ref.ChannelOrder, shardRuns, tele))
	}

	// Carry the shards' telemetry snapshots and span traces into the
	// merged dataset under the slot-restriction rule (each shard process
	// re-runs the channel funnel on its slot 0, so only the slot matching
	// the manifest's shard index contributes — see telemetry.MergeShardSnapshots).
	shardIdx := make([]int, n)
	snaps := make([]*telemetry.Snapshot, n)
	traces := make([]*telemetry.Trace, n)
	for s, ds := range byShard {
		shardIdx[s] = ds.Shard.Shard
		snaps[s] = ds.Telemetry
		traces[s] = ds.Trace
	}
	out.Telemetry = telemetry.MergeShardSnapshots(shardIdx, snaps)
	out.Trace = telemetry.MergeShardTraces(shardIdx, traces)
	return out, nil
}
