package store

import (
	"fmt"
	"net/http"
	"net/url"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// benchFlattenDataset builds a dataset with the paper's shape: a handful
// of runs, each holding tens of thousands of flows.
func benchFlattenDataset(runs, flowsPerRun int) *Dataset {
	ds := &Dataset{}
	u, _ := url.Parse("http://tracker.example.de/px")
	for r := 0; r < runs; r++ {
		rd := &RunData{Name: RunName(fmt.Sprintf("run-%d", r))}
		rd.Flows = make([]*proxy.Flow, flowsPerRun)
		for i := range rd.Flows {
			rd.Flows[i] = &proxy.Flow{
				Time:       time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC),
				Method:     http.MethodGet,
				URL:        u,
				StatusCode: 200,
			}
		}
		ds.Runs = append(ds.Runs, rd)
	}
	return ds
}

// flattenFlowsNoHint is the pre-columnar flattening (append without a
// capacity hint), kept here as the benchmark baseline. The half-million-
// row study dataset made the growing backing array reallocate and copy
// about twenty times per BuildIndex call.
func flattenFlowsNoHint(ds *Dataset) (flows []*proxy.Flow, runID []int32) {
	for ri, r := range ds.Runs {
		for _, f := range r.Flows {
			flows = append(flows, f)
			runID = append(runID, int32(ri))
		}
	}
	return flows, runID
}

// BenchmarkFlattenFlows compares the exact-capacity flattening BuildIndex
// uses against the unhinted baseline. Run with -benchmem: the hinted
// variant does exactly two allocations (one per output slice) regardless
// of dataset size, while the baseline's count grows with log(rows).
func BenchmarkFlattenFlows(b *testing.B) {
	ds := benchFlattenDataset(5, 40_000)
	b.Run("prealloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flows, _ := flattenFlows(ds)
			if len(flows) != 200_000 {
				b.Fatal("bad flatten")
			}
		}
	})
	b.Run("no-hint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flows, _ := flattenFlowsNoHint(ds)
			if len(flows) != 200_000 {
				b.Fatal("bad flatten")
			}
		}
	})
}

// TestFlattenFlowsAllocations pins the allocation contract the benchmark
// demonstrates: one allocation per output slice, independent of row count.
func TestFlattenFlowsAllocations(t *testing.T) {
	for _, rows := range []int{100, 10_000} {
		ds := benchFlattenDataset(3, rows)
		got := testing.AllocsPerRun(10, func() {
			flattenFlows(ds)
		})
		if got > 2 {
			t.Errorf("flattenFlows(%d rows) did %.0f allocations, want <= 2", 3*rows, got)
		}
	}
}

// TestFlattenFlowsOrder: flattening preserves dataset row order (run
// order, then flow order within each run) and aligns the run column.
func TestFlattenFlowsOrder(t *testing.T) {
	ds := benchFlattenDataset(3, 4)
	flows, runID := flattenFlows(ds)
	if len(flows) != 12 || len(runID) != 12 {
		t.Fatalf("flatten sizes %d/%d, want 12/12", len(flows), len(runID))
	}
	row := 0
	for ri, r := range ds.Runs {
		for _, f := range r.Flows {
			if flows[row] != f {
				t.Fatalf("row %d is not run %d's flow", row, ri)
			}
			if runID[row] != int32(ri) {
				t.Fatalf("runID[%d] = %d, want %d", row, runID[row], ri)
			}
			row++
		}
	}
}
