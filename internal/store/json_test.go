package store

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

func persistedDataset() *Dataset {
	t0 := time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC)
	f := mkFlow("http://tvping.com/t?c=a", "A", false)
	f.ID = 7
	f.RequestHeaders.Set("Referer", "http://a.de/index.html")
	f.RequestBody = []byte("payload")
	f.ResponseHeaders.Add("Set-Cookie", "tvpid=abc; Path=/")
	f.ResponseHeaders.Add("Set-Cookie", "tvpid_a=def; Path=/")
	f.ResponseBody = []byte("<html>body</html>")
	return &Dataset{Runs: []*RunData{{
		Name:     RunRed,
		Date:     t0,
		Channels: []ChannelInfo{{Name: "A", ID: "sid-1", Show: "Tatort", Genre: "Krimi"}},
		Flows:    []*proxy.Flow{f},
		Cookies: []webos.StoredCookie{{
			Name: "tvpid", Value: "abc", Domain: "tvping.com", Path: "/",
			Created: t0, Expires: t0.Add(24 * time.Hour), SetBy: "a.tvping.com",
		}},
		Storage: []webos.StorageItem{{Origin: "http://a.de", Key: "k", Value: "v"}},
		Screenshots: []webos.Screenshot{
			{Time: t0, Channel: "A", ChannelID: "sid-1", HasSignal: true, Show: "Tatort"},
			{Time: t0.Add(time.Minute), Channel: "A", ChannelID: "sid-1", HasSignal: true,
				Overlay: &appmodel.OverlaySpec{
					Type:    appmodel.OverlayPrivacy,
					Privacy: appmodel.PrivacyConsentNotice,
					Consent: &appmodel.ConsentSpec{
						StyleID: 3, Brand: "P7S1", Modal: true,
						Layers: []appmodel.ConsentLayer{{
							Buttons: []appmodel.ConsentButton{{Label: "OK", Role: appmodel.RoleAcceptAll, Highlight: true}},
						}},
					},
				}},
		},
		Logs: []webos.LogEntry{{Time: t0, Kind: webos.LogSwitch, Detail: "switch to A"}},
	}}}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	want := persistedDataset()
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("runs = %d", len(got.Runs))
	}
	gr, wr := got.Runs[0], want.Runs[0]
	if gr.Name != wr.Name || !gr.Date.Equal(wr.Date) {
		t.Errorf("run header = %v %v", gr.Name, gr.Date)
	}
	if !reflect.DeepEqual(gr.Channels, wr.Channels) {
		t.Errorf("channels = %+v", gr.Channels)
	}
	gf, wf := gr.Flows[0], wr.Flows[0]
	if gf.ID != wf.ID || gf.Method != wf.Method || gf.URL.String() != wf.URL.String() {
		t.Errorf("flow identity = %+v", gf)
	}
	if gf.Referer() != wf.Referer() {
		t.Errorf("referer = %q", gf.Referer())
	}
	if !bytes.Equal(gf.RequestBody, wf.RequestBody) || !bytes.Equal(gf.ResponseBody, wf.ResponseBody) {
		t.Error("bodies lost")
	}
	// Set-Cookie multiplicity preserved — the cookie analyses depend on it.
	if got, want := gf.SetCookies(), wf.SetCookies(); len(got) != len(want) || len(got) != 2 {
		t.Errorf("set-cookies = %v", got)
	}
	if gf.ContentType() != wf.ContentType() {
		t.Errorf("content type = %q, want %q", gf.ContentType(), wf.ContentType())
	}
	if !reflect.DeepEqual(gr.Cookies, wr.Cookies) {
		t.Errorf("cookies = %+v", gr.Cookies)
	}
	if !reflect.DeepEqual(gr.Storage, wr.Storage) {
		t.Errorf("storage = %+v", gr.Storage)
	}
	if !reflect.DeepEqual(gr.Screenshots, wr.Screenshots) {
		t.Errorf("screenshots = %+v", gr.Screenshots)
	}
	if !reflect.DeepEqual(gr.Logs, wr.Logs) {
		t.Errorf("logs = %+v", gr.Logs)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not gzip")); err == nil {
		t.Error("Load accepted plain text")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	gzw := newGzipJSON(&buf, `{"version":99,"runs":[]}`)
	_ = gzw
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v", err)
	}
}

// newGzipJSON writes raw JSON gzip-compressed into buf.
func newGzipJSON(buf *bytes.Buffer, raw string) error {
	gz := gzip.NewWriter(buf)
	if _, err := gz.Write([]byte(raw)); err != nil {
		return err
	}
	return gz.Close()
}
