package store

import (
	"fmt"
	"sort"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file is the deterministic merge layer of the sharded measurement
// engine: each worker shard measures a disjoint subset of a run's channels
// on its own isolated framework and produces one RunData; MergeRunShards
// recombines those shard datasets into a single RunData whose contents are
// ordered by the canonical channel list — never by shard completion order —
// so the merged dataset is byte-identical for every worker count.

// MergeRunShards combines per-shard RunData of the same logical run into
// one RunData. order is the canonical channel-name order (the funnel's
// output order); shards is indexed by shard number and may contain nil
// entries for shards that produced nothing (cancelled or failed).
//
// Ordering rules:
//   - Channels, attributed Flows, and Screenshots are grouped per channel
//     and emitted in canonical channel order (within one channel, the
//     shard-recorded order is preserved).
//   - Unattributed flows, cookies, storage items, and logs are concatenated
//     in shard-index order (each shard's slice is already deterministic).
//   - Flow IDs are reassigned sequentially after the merge so they stay
//     unique and independent of shard layout.
//
// Every rule depends only on shard index and canonical order, so the result
// is independent of the order in which shards finished.
func MergeRunShards(order []string, shards []*RunData) *RunData {
	return MergeRunShardsObserved(order, shards, nil)
}

// MergeRunShardsObserved is MergeRunShards with merge-phase telemetry:
// tele (typically the engine-controller handle) receives merge.begin /
// merge.end events and per-merge counters. A nil handle is a no-op, so
// MergeRunShards simply delegates here.
func MergeRunShardsObserved(order []string, shards []*RunData, tele *telemetry.Shard) *RunData {
	if tele.Active() {
		live := 0
		for _, s := range shards {
			if s != nil {
				live++
			}
		}
		tele.Event(telemetry.EventMergeBegin, fmt.Sprintf("shards=%d/%d", live, len(shards)))
	}
	mergeSpan := tele.StartSpan(telemetry.SpanMerge, "")
	merged := mergeRunShards(order, shards)
	if mergeSpan.Active() {
		mergeSpan.SetName(string(merged.Name))
	}
	mergeSpan.End()
	if tele.Active() {
		tele.Counter("merge_runs").Inc()
		tele.Counter("merge_channels").Add(uint64(len(merged.Channels)))
		tele.Counter("merge_flows").Add(uint64(len(merged.Flows)))
		tele.Event(telemetry.EventMergeEnd, fmt.Sprintf("run=%s channels=%d flows=%d",
			merged.Name, len(merged.Channels), len(merged.Flows)))
	}
	return merged
}

func mergeRunShards(order []string, shards []*RunData) *RunData {
	merged := &RunData{}
	for _, s := range shards {
		if s == nil {
			continue
		}
		if merged.Name == "" {
			merged.Name, merged.Date = s.Name, s.Date
		}
		merged.RecoveredPanics += s.RecoveredPanics
	}

	rank := make(map[string]int, len(order))
	for i, name := range order {
		rank[name] = i
	}
	pos := func(name string) int {
		if i, ok := rank[name]; ok {
			return i
		}
		return len(order) // unknown channels sort after the canonical list
	}

	// Channels in canonical order. Shards own disjoint subsets, so a stable
	// sort by canonical rank fully determines the result.
	for _, s := range shards {
		if s != nil {
			merged.Channels = append(merged.Channels, s.Channels...)
		}
	}
	sort.SliceStable(merged.Channels, func(a, b int) bool {
		return pos(merged.Channels[a].Name) < pos(merged.Channels[b].Name)
	})

	// Flows: attributed ones grouped by channel in canonical order,
	// unattributed ones after, in shard-index order.
	byChannel := make(map[string][]*proxy.Flow)
	var unattributed []*proxy.Flow
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, f := range s.Flows {
			if f.Channel == "" {
				unattributed = append(unattributed, f)
				continue
			}
			byChannel[f.Channel] = append(byChannel[f.Channel], f)
		}
	}
	for _, ci := range merged.Channels {
		merged.Flows = append(merged.Flows, byChannel[ci.Name]...)
		delete(byChannel, ci.Name)
	}
	// Flows attributed to a channel missing from the merged channel list
	// (possible after mid-run cancellation) keep canonical order too.
	if len(byChannel) > 0 {
		rest := make([]string, 0, len(byChannel))
		for name := range byChannel {
			rest = append(rest, name)
		}
		sort.Slice(rest, func(a, b int) bool {
			pa, pb := pos(rest[a]), pos(rest[b])
			if pa != pb {
				return pa < pb
			}
			return rest[a] < rest[b]
		})
		for _, name := range rest {
			merged.Flows = append(merged.Flows, byChannel[name]...)
		}
	}
	merged.Flows = append(merged.Flows, unattributed...)
	for i, f := range merged.Flows {
		f.ID = int64(i + 1)
	}

	// Screenshots grouped by channel in canonical order, like flows.
	shotsByChannel := make(map[string][]webos.Screenshot)
	var shotOrder []string
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, shot := range s.Screenshots {
			if _, seen := shotsByChannel[shot.Channel]; !seen {
				shotOrder = append(shotOrder, shot.Channel)
			}
			shotsByChannel[shot.Channel] = append(shotsByChannel[shot.Channel], shot)
		}
	}
	sort.SliceStable(shotOrder, func(a, b int) bool {
		pa, pb := pos(shotOrder[a]), pos(shotOrder[b])
		if pa != pb {
			return pa < pb
		}
		return shotOrder[a] < shotOrder[b]
	})
	for _, name := range shotOrder {
		merged.Screenshots = append(merged.Screenshots, shotsByChannel[name]...)
	}

	// Outcomes: shards own disjoint channel subsets, so like Channels a
	// stable sort by canonical rank fully determines the merged order.
	for _, s := range shards {
		if s != nil {
			merged.Outcomes = append(merged.Outcomes, s.Outcomes...)
		}
	}
	sort.SliceStable(merged.Outcomes, func(a, b int) bool {
		pa, pb := pos(merged.Outcomes[a].Channel), pos(merged.Outcomes[b].Channel)
		if pa != pb {
			return pa < pb
		}
		return merged.Outcomes[a].Channel < merged.Outcomes[b].Channel
	})

	// Cookie jars, localStorage, and logs concatenate in shard-index order;
	// each shard's snapshot is already sorted (jar/storage) or timeline-
	// ordered (logs) deterministically.
	for _, s := range shards {
		if s == nil {
			continue
		}
		merged.Cookies = append(merged.Cookies, s.Cookies...)
		merged.Storage = append(merged.Storage, s.Storage...)
		merged.Logs = append(merged.Logs, s.Logs...)
	}
	return merged
}
