package store

import (
	"bytes"
	"net/http"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// loadBoth saves ds in both formats and loads both back through Load's
// format sniffing, failing on any error.
func loadBoth(t *testing.T, ds *Dataset) (fromJSON, fromSnap *Dataset) {
	t.Helper()
	var jb, sb bytes.Buffer
	if err := ds.Save(&jb); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	var err error
	if fromJSON, err = Load(&jb); err != nil {
		t.Fatalf("load json: %v", err)
	}
	if fromSnap, err = Load(&sb); err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	return fromJSON, fromSnap
}

// TestSnapshotMatchesJSONLoad: loading a snapshot must produce the exact
// in-memory dataset loading the gzip-JSON form produces, on a fixture that
// exercises overlays, cookies, storage, logs, and multi-value Set-Cookie.
func TestSnapshotMatchesJSONLoad(t *testing.T) {
	fromJSON, fromSnap := loadBoth(t, persistedDataset())
	if !reflect.DeepEqual(fromJSON, fromSnap) {
		t.Fatalf("snapshot load differs from json load:\njson: %+v\nsnap: %+v", fromJSON, fromSnap)
	}
}

// TestSnapshotFlowEdgeCases drives the flow record encoder through its
// corners: the zero time, URLs the decomposed fast path must reject,
// multi-value headers, shared bodies, and an unattributed flow.
func TestSnapshotFlowEdgeCases(t *testing.T) {
	t0 := time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC)
	mk := func(raw string) *proxy.Flow {
		u, err := url.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return &proxy.Flow{
			Time: t0, Method: "GET", URL: u, StatusCode: 200,
			RequestHeaders:  http.Header{},
			ResponseHeaders: http.Header{"Content-Type": {"text/html"}},
		}
	}

	zeroTime := mk("http://a.example.de/px")
	zeroTime.Time = time.Time{}

	// %2F in the path forces RawPath on re-parse, so the four-field
	// reassembly is not byte-faithful and the encoder must fall back to
	// storing the full URL string.
	escaped := mk("http://a.example.de/a%2Fb?x=1")

	fragment := mk("http://a.example.de/page#top")

	multi := mk("https://b.example.de/app")
	multi.HTTPS = true
	multi.RequestHeaders.Add("Accept", "text/html")
	multi.RequestHeaders.Add("Accept", "image/gif")
	multi.ResponseHeaders.Add("Set-Cookie", "a=1; Path=/")
	multi.ResponseHeaders.Add("Set-Cookie", "b=2; Path=/")
	multi.ResponseBody = []byte("<html>shared</html>")

	shared := mk("https://b.example.de/app2")
	shared.ResponseBody = []byte("<html>shared</html>") // same blob as multi
	shared.RequestBody = []byte("post-data")
	shared.Channel, shared.ChannelID = "B", "sid-2"

	unattributed := mk("http://t.example.de/beacon")
	unattributed.StatusCode = 504
	unattributed.ResponseSize = 1 << 20

	flows := []*proxy.Flow{zeroTime, escaped, fragment, multi, shared, unattributed}
	for i, f := range flows {
		f.ID = int64(i + 1)
	}
	ds := &Dataset{Runs: []*RunData{{Name: RunRed, Date: t0, Flows: flows}}}

	fromJSON, fromSnap := loadBoth(t, ds)
	if !reflect.DeepEqual(fromJSON, fromSnap) {
		for i := range fromJSON.Runs[0].Flows {
			a, b := fromJSON.Runs[0].Flows[i], fromSnap.Runs[0].Flows[i]
			if !reflect.DeepEqual(a, b) {
				t.Errorf("flow %d differs:\njson: %#v\nsnap: %#v", i, a, b)
			}
		}
		t.Fatal("snapshot load differs from json load")
	}

	// The digest must not care which format the dataset came through.
	want, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromSnap.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("snapshot-loaded digest %s != original %s", got, want)
	}
}

// TestSnapshotRejectsCorruption: version, magic, and truncation must fail
// loudly, never panic or return a half-dataset.
func TestSnapshotRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := persistedDataset().SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := LoadSnapshot(strings.NewReader("nonsense")); err == nil {
		t.Error("bad magic accepted")
	}

	wrongVer := bytes.Clone(raw)
	wrongVer[4] = 99
	if _, err := LoadSnapshot(bytes.NewReader(wrongVer)); err == nil {
		t.Error("wrong version accepted")
	}

	// The five header bytes alone are a truncated snapshot — the end
	// marker is missing — and anything cut mid-section must fail too.
	if _, err := LoadSnapshot(bytes.NewReader(raw[:5])); err == nil {
		t.Error("header-only snapshot accepted despite missing end marker")
	}
	for _, cut := range []int{7, len(raw) / 2, len(raw) - 1} {
		if _, err := LoadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}

	flipped := bytes.Clone(raw)
	flipped[6] ^= 0xff // inside the string table section header
	if _, err := LoadSnapshot(bytes.NewReader(flipped)); err == nil {
		t.Log("section-header flip still decoded (length happened to stay plausible)")
	}
}

// TestSnapshotSkipsUnknownSection: a snapshot carrying a section tag this
// reader does not know must still load — the length prefix makes unknown
// sections skippable, which is the format's forward-compatibility story.
func TestSnapshotSkipsUnknownSection(t *testing.T) {
	ds := persistedDataset()
	var buf bytes.Buffer
	if err := ds.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Append an unknown trailing section: tag 200, 3-byte payload.
	buf.Write([]byte{200, 3, 0xde, 0xad, 0xbf})
	got, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatalf("unknown section broke the load: %v", err)
	}
	if len(got.Runs) != len(ds.Runs) {
		t.Fatalf("got %d runs, want %d", len(got.Runs), len(ds.Runs))
	}
}
