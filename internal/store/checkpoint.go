package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/intern"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file is the checkpoint half of the crash-safe campaign layer: the
// on-disk format that lets a killed collector resume to a Dataset.Digest
// byte-identical to an uninterrupted run.
//
// A checkpoint is a set of completed cells. One cell is one (shard, run)
// unit of work — the full RunData the shard's framework produced for that
// run, plus the CellState needed to fast-forward a freshly built
// framework and world to the exact engine state the producer held when
// the run finished (rng positions, flow-ID counter, TV log history,
// retry/quarantine bookkeeping, tracker handler state). Because the
// engine is deterministic, replaying the cell data and restoring the cell
// state is indistinguishable from having measured the prefix.
//
// On disk a checkpoint is an ordinary snapshot container (same magic,
// version, and section framing as snapshot.go): a secCheckpoint section
// holding the JSON metadata — study params fingerprint, topology, channel
// order, and the per-cell states — followed by one secRun section per
// cell carrying its RunData through the exact encoder the dataset
// snapshot uses. Readers that don't know the checkpoint tag skip it, so
// store.Load opens a checkpoint file as a plain dataset of its cell runs.
//
// The sidecar journal (journal.go) appends one single-cell checkpoint
// per completed cell, CRC-framed and fsync'd, which is what survives
// SIGKILL; this file defines the cell format both layers share.

// TrackerState is the captured mutable handler state of one synthetic
// tracker service: the count of rng values it has drawn and its short-ID
// counter. Keyed by position in the world's deterministic install order;
// Domain is carried for validation (a few domains are installed twice, so
// the domain alone is not a key).
type TrackerState struct {
	Domain string `json:"domain"`
	Draws  uint64 `json:"draws,omitempty"`
	NextID int64  `json:"nextId,omitempty"`
}

// CellState is everything beyond the RunData itself that a resumed
// framework must restore at a run boundary to continue byte-identically:
// the cumulative state of the shard's deterministic machinery as of the
// end of the cell's run.
type CellState struct {
	// FrameworkDraws is the framework rng's draw count (channel-order
	// permutations and interaction scripts consume it).
	FrameworkDraws uint64 `json:"frameworkDraws"`
	// TVDraws is the TV identifier rng's draw count (user and session
	// IDs).
	TVDraws uint64 `json:"tvDraws"`
	// RecorderNextID is the proxy recorder's next flow ID — flow IDs run
	// across runs within a shard and are not reset by Recorder.Reset.
	RecorderNextID int64 `json:"recorderNextId"`
	// TVLogTail holds the TV log entries recorded after the run's data
	// was collected (the trailing power-off entry): the TV accumulates
	// logs across runs, so a resume seeds the TV with the cell's
	// Data.Logs plus this tail.
	TVLogTail []webos.LogEntry `json:"tvLogTail,omitempty"`
	// FailStreak and Quarantined capture the retry policy's cross-run
	// bookkeeping: consecutive failed runs per channel, and the channels
	// already benched. A channel quarantined before a kill must stay
	// quarantined after the resume — no bonus retries.
	FailStreak  map[string]int `json:"failStreak,omitempty"`
	Quarantined []string       `json:"quarantined,omitempty"`
	// Trackers is the world's handler state in install order.
	Trackers []TrackerState `json:"trackers,omitempty"`
}

// CheckpointCell is one completed (shard, run) unit of work.
type CheckpointCell struct {
	// Shard is the engine shard that produced the cell — the in-process
	// shard index, or the fleet shard for -shard i/N collectors.
	Shard int `json:"shard"`
	// RunIndex is the run's position in the study's run-spec order.
	RunIndex int `json:"runIndex"`
	// Run is the run's name (validated against the spec on resume).
	Run RunName `json:"run"`
	// State is the shard's cumulative engine state at the end of the run.
	State CellState `json:"state"`
	// Data is the run's full measurement data, carried as a run section
	// in the container rather than in the JSON metadata.
	Data *RunData `json:"-"`
}

// Checkpoint is a self-describing set of completed cells. Its identity
// block (Params through OrderDigest) pins the campaign the cells belong
// to, so a resume with mismatched study parameters or topology is
// rejected with the differing field named instead of silently producing a
// dataset no uninterrupted run could have measured.
type Checkpoint struct {
	// Params is the study fingerprint — the same one the fleet layer's
	// shard manifests carry.
	Params StudyParams `json:"params"`
	// Shards is the engine's shard count (Options.Shards for in-process
	// campaigns, the fleet width for -shard collectors).
	Shards int `json:"shards"`
	// FleetShard is the fleet partition index for -shard i/N collectors,
	// or -1 for in-process campaigns (which own every shard).
	FleetShard int `json:"fleetShard"`
	// Runs lists the run names in spec order; cell RunIndex values index
	// into it.
	Runs []RunName `json:"runs"`
	// ChannelOrder is the canonical channel order with its digest — same
	// contract as ShardManifest.
	ChannelOrder []string `json:"channelOrder"`
	OrderDigest  string   `json:"orderDigest"`
	// Cells are the completed cells, in commit order.
	Cells []*CheckpointCell `json:"cells,omitempty"`
}

// Validate checks that the loaded checkpoint describes the same campaign
// as want (a header built from the resuming study's configuration). The
// first mismatching field is named in the error.
func (cp *Checkpoint) Validate(want *Checkpoint) error {
	if field := cp.Params.diff(want.Params); field != "" {
		return fmt.Errorf("store: checkpoint: study parameter mismatch: %s differs from the checkpointed campaign", field)
	}
	if cp.Shards != want.Shards {
		return fmt.Errorf("store: checkpoint: shard count mismatch: checkpoint has %d, study wants %d", cp.Shards, want.Shards)
	}
	if cp.FleetShard != want.FleetShard {
		return fmt.Errorf("store: checkpoint: fleet shard mismatch: checkpoint is for shard %s, study wants %s",
			fleetShardLabel(cp.FleetShard), fleetShardLabel(want.FleetShard))
	}
	if len(cp.Runs) != len(want.Runs) {
		return fmt.Errorf("store: checkpoint: run specs mismatch: checkpoint has %d runs, study wants %d", len(cp.Runs), len(want.Runs))
	}
	for i, name := range cp.Runs {
		if name != want.Runs[i] {
			return fmt.Errorf("store: checkpoint: run specs mismatch: run %d is %s in the checkpoint, %s in the study", i, name, want.Runs[i])
		}
	}
	if cp.OrderDigest != want.OrderDigest {
		return fmt.Errorf("store: checkpoint: channel order mismatch: checkpoint digest %s, study digest %s", cp.OrderDigest, want.OrderDigest)
	}
	return nil
}

func fleetShardLabel(shard int) string {
	if shard < 0 {
		return "the whole campaign (in-process)"
	}
	return fmt.Sprintf("%d", shard)
}

// checkCell validates a cell's coordinates against the checkpoint header.
func (cp *Checkpoint) checkCell(c *CheckpointCell) error {
	if c.RunIndex < 0 || c.RunIndex >= len(cp.Runs) {
		return fmt.Errorf("store: checkpoint: cell run index %d out of range [0, %d)", c.RunIndex, len(cp.Runs))
	}
	if c.Run != cp.Runs[c.RunIndex] {
		return fmt.Errorf("store: checkpoint: cell for run %d is named %s, spec says %s", c.RunIndex, c.Run, cp.Runs[c.RunIndex])
	}
	if c.Shard < 0 || (cp.Shards > 0 && c.Shard >= cp.Shards) {
		return fmt.Errorf("store: checkpoint: cell shard %d out of range [0, %d)", c.Shard, cp.Shards)
	}
	if c.Data == nil {
		return fmt.Errorf("store: checkpoint: cell (shard %d, run %s) has no data section", c.Shard, c.Run)
	}
	if c.Data.Name != c.Run {
		return fmt.Errorf("store: checkpoint: cell (shard %d, run %s) carries data for run %s", c.Shard, c.Run, c.Data.Name)
	}
	return nil
}

// WriteCheckpoint writes the checkpoint as a snapshot container: the
// metadata section first, then the shared tables, then one run section
// per cell in cell order. The output is deterministic for a given
// checkpoint.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	for _, c := range cp.Cells {
		if c.Data == nil {
			return fmt.Errorf("store: checkpoint: cell (shard %d, run %s) has no data", c.Shard, c.Run)
		}
	}

	tab := intern.NewStrings(1024)
	tab.Intern("") // ID 0 is the empty string
	blobs := newBlobTable()
	scratch := flowSnapScratch{reqTab: newHeaderTable(), respTab: newHeaderTable()}
	runSecs := make([][]byte, 0, len(cp.Cells))
	for _, c := range cp.Cells {
		sec, err := encodeRunSnapshot(c.Data, tab, blobs, &scratch)
		if err != nil {
			return err
		}
		runSecs = append(runSecs, sec)
	}

	meta, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("store: checkpoint: marshal metadata: %w", err)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeSnapshotHeader(bw); err != nil {
		return err
	}
	if err := writeSection(bw, secCheckpoint, meta); err != nil {
		return err
	}
	if err := writeSnapshotTables(bw, tab, blobs, &scratch); err != nil {
		return err
	}
	for _, sec := range runSecs {
		if err := writeSection(bw, secRun, sec); err != nil {
			return err
		}
	}
	// End marker, same contract as the dataset snapshot: it lets both the
	// checkpoint reader and the plain dataset loader detect a file cut at
	// a section boundary.
	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// ReadCheckpoint reads a checkpoint container written by WriteCheckpoint,
// reattaching each cell's run data. Truncated or corrupted input fails
// with a wrapped error naming the damage; it never yields a checkpoint
// with fewer cells than the metadata promises.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := readAllSized(r)
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	return decodeCheckpoint(raw)
}

// decodeCheckpoint decodes a checkpoint container from memory (the
// journal reader calls this once per frame).
func decodeCheckpoint(raw []byte) (*Checkpoint, error) {
	if len(raw) < len(snapshotMagic)+1 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: checkpoint: bad magic")
	}
	if ver := raw[len(snapshotMagic)]; ver != snapshotVer {
		return nil, fmt.Errorf("store: checkpoint: unsupported snapshot version %d", ver)
	}
	sr := &snapReader{b: raw, off: len(snapshotMagic) + 1}

	dec := &snapDecoder{overlays: make(map[uint64]*appmodel.OverlaySpec, 16)}
	var cp *Checkpoint
	var runs []*RunData
	sawEnd := false
	for sr.err == nil && sr.off < len(sr.b) {
		tag := sr.byte()
		payload := sr.bytes()
		if sr.err != nil {
			break
		}
		ps := &snapReader{b: payload}
		switch tag {
		case secCheckpoint:
			cp = &Checkpoint{}
			if err := json.Unmarshal(payload, cp); err != nil {
				return nil, fmt.Errorf("store: checkpoint: metadata: %w", err)
			}
		case secStrings:
			n := ps.uvarint()
			if n > uint64(len(payload)) {
				return nil, fmt.Errorf("store: snapshot: implausible string count %d", n)
			}
			dec.strs = make([]string, 0, n)
			for i := uint64(0); i < n && ps.err == nil; i++ {
				dec.strs = append(dec.strs, string(ps.bytes()))
			}
		case secBlobs:
			n := ps.uvarint()
			if n > uint64(len(payload)) {
				return nil, fmt.Errorf("store: snapshot: implausible blob count %d", n)
			}
			dec.blobs = make([][]byte, 0, n)
			for i := uint64(0); i < n && ps.err == nil; i++ {
				dec.blobs = append(dec.blobs, ps.bytes())
			}
		case secReqHdrs:
			dec.reqList = dec.decodeHeaderTable(ps, false)
		case secRespHdrs:
			dec.respList = dec.decodeHeaderTable(ps, true)
		case secRun:
			run, err := dec.decodeRun(ps)
			if err != nil {
				return nil, err
			}
			runs = append(runs, run)
		case secEnd:
			sawEnd = true
		default:
			// Unknown section from a newer writer: skip.
		}
		if ps.err != nil {
			return nil, ps.err
		}
	}
	if sr.err != nil {
		return nil, sr.err
	}
	if cp == nil {
		return nil, fmt.Errorf("store: checkpoint: no checkpoint section (not a checkpoint file?)")
	}
	if !sawEnd {
		return nil, fmt.Errorf("store: checkpoint: truncated: missing end-of-snapshot marker")
	}
	if len(runs) != len(cp.Cells) {
		return nil, fmt.Errorf("store: checkpoint: truncated: metadata promises %d cells, found %d run sections", len(cp.Cells), len(runs))
	}
	for i, c := range cp.Cells {
		c.Data = runs[i]
		if err := cp.checkCell(c); err != nil {
			return nil, err
		}
	}
	return cp, nil
}
