// Package store is the study's data sink (its BigQuery substitute): it
// holds, per measurement run, the recorded flows, the TV's cookie jar and
// localStorage dumps, the screenshots, the interaction logs, and the
// channel metadata — and offers the query helpers the analyses are built
// on.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// RunName identifies one of the five measurement runs.
type RunName string

// The five measurement runs of the study.
const (
	RunGeneral RunName = "General"
	RunRed     RunName = "Red"
	RunGreen   RunName = "Green"
	RunBlue    RunName = "Blue"
	RunYellow  RunName = "Yellow"
)

// AllRuns lists the runs in the paper's table order.
var AllRuns = []RunName{RunGeneral, RunRed, RunGreen, RunBlue, RunYellow}

// ChannelInfo is the per-channel metadata recorded with each run.
type ChannelInfo struct {
	Name       string
	ID         string
	Satellite  string
	Language   string
	Categories []dvb.ServiceCategory
	// Show and Genre record the program aired during the measurement —
	// the behavioral data the leakage analysis searches for in traffic.
	Show  string
	Genre string
}

// PrimaryCategory mirrors dvb.Service.PrimaryCategory.
func (c *ChannelInfo) PrimaryCategory() dvb.ServiceCategory {
	if len(c.Categories) == 0 {
		return ""
	}
	return c.Categories[0]
}

// TargetsChildren reports whether the satellite operator's metadata marks
// this channel as exclusively targeting children.
func (c *ChannelInfo) TargetsChildren() bool {
	return len(c.Categories) == 1 && c.Categories[0] == dvb.CategoryChildren
}

// OutcomeStatus classifies how one channel's visit ended within a run.
type OutcomeStatus string

// The channel outcome states. A channel with no outcome record predates
// outcome tracking (older datasets) and should be treated as ok.
const (
	// OutcomeOK: the visit completed (possibly after retries).
	OutcomeOK OutcomeStatus = "ok"
	// OutcomeSkipped: the channel was never attempted — off-air during
	// the run, or the run was cancelled before reaching it.
	OutcomeSkipped OutcomeStatus = "skipped"
	// OutcomeFailed: every attempt failed; the channel contributed no
	// measurement data to this run.
	OutcomeFailed OutcomeStatus = "failed"
	// OutcomeQuarantined: the channel was benched after failing in too
	// many consecutive runs and was not attempted.
	OutcomeQuarantined OutcomeStatus = "quarantined"
)

// ChannelOutcome is the structured per-channel visit record a resilient
// campaign keeps instead of aborting: which channels made it into the run,
// which were retried, and why the rest are missing.
type ChannelOutcome struct {
	Channel string
	Status  OutcomeStatus
	// Attempts counts visit attempts (0 for skipped/quarantined channels).
	Attempts int
	// Error is the final attempt's error for failed channels, or a short
	// reason for skipped/quarantined ones.
	Error string
}

// RunData is everything collected during one measurement run.
type RunData struct {
	Name        RunName
	Date        time.Time
	Channels    []ChannelInfo
	Flows       []*proxy.Flow
	Cookies     []webos.StoredCookie
	Storage     []webos.StorageItem
	Screenshots []webos.Screenshot
	Logs        []webos.LogEntry
	// Outcomes records one entry per channel the run considered, in the
	// study's canonical channel order. Empty for datasets predating
	// outcome tracking.
	Outcomes []ChannelOutcome
	// RecoveredPanics counts channels whose application panicked during
	// the run and was recovered by the measurement framework (the panic
	// details are in Logs as error entries).
	RecoveredPanics int
}

// Outcome returns the named channel's outcome record, or nil.
func (r *RunData) Outcome(channel string) *ChannelOutcome {
	for i := range r.Outcomes {
		if r.Outcomes[i].Channel == channel {
			return &r.Outcomes[i]
		}
	}
	return nil
}

// CountOutcomes tallies the run's outcome records by status.
func (r *RunData) CountOutcomes() map[OutcomeStatus]int {
	out := make(map[OutcomeStatus]int)
	for _, o := range r.Outcomes {
		out[o.Status]++
	}
	return out
}

// Channel returns the metadata for the named channel, or nil.
func (r *RunData) Channel(name string) *ChannelInfo {
	for i := range r.Channels {
		if r.Channels[i].Name == name {
			return &r.Channels[i]
		}
	}
	return nil
}

// FlowsByChannel groups the run's attributed flows by channel name.
// Unattributed flows are dropped, as in the paper's mapping procedure.
func (r *RunData) FlowsByChannel() map[string][]*proxy.Flow {
	out := make(map[string][]*proxy.Flow)
	for _, f := range r.Flows {
		if f.Channel == "" {
			continue
		}
		out[f.Channel] = append(out[f.Channel], f)
	}
	return out
}

// CountHTTPS returns (plain, https) request counts.
func (r *RunData) CountHTTPS() (plain, https int) {
	for _, f := range r.Flows {
		if f.HTTPS {
			https++
		} else {
			plain++
		}
	}
	return plain, https
}

// HTTPSShare returns the fraction of requests that were HTTPS.
func (r *RunData) HTTPSShare() float64 {
	plain, https := r.CountHTTPS()
	total := plain + https
	if total == 0 {
		return 0
	}
	return float64(https) / float64(total)
}

// Dataset is the complete study data set across all runs.
type Dataset struct {
	Runs []*RunData
	// Telemetry is the final telemetry snapshot of the measurement engine
	// that produced this dataset (nil when telemetry was disabled). It is
	// persisted by Save/Load next to the run data but deliberately
	// excluded from Digest: the digest fingerprints the measurement data
	// itself, so enabling observability can never change it.
	Telemetry *telemetry.Snapshot
	// Shard is the self-describing shard manifest of a fleet-campaign
	// shard dataset (nil for complete datasets). Like Telemetry it is
	// persisted by Save/Load but excluded from Digest: the digest of a
	// merged dataset must equal the single-process run's, and the
	// partition a shard came from is topology, not measurement data.
	Shard *ShardManifest
	// Trace is the engine's completed span trace (nil when tracing was
	// disabled). Like Telemetry it is persisted by Save/Load but excluded
	// from Digest: spans describe where the virtual time of the
	// measurement went, not the measurement itself.
	Trace *telemetry.Trace
}

// Run returns the named run, or nil.
func (d *Dataset) Run(name RunName) *RunData {
	for _, r := range d.Runs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// AllFlows returns every flow across runs (shared backing slices are not
// copied; treat the result as read-only).
func (d *Dataset) AllFlows() []*proxy.Flow {
	var out []*proxy.Flow
	for _, r := range d.Runs {
		out = append(out, r.Flows...)
	}
	return out
}

// AllScreenshots returns every screenshot across runs.
func (d *Dataset) AllScreenshots() []webos.Screenshot {
	var out []webos.Screenshot
	for _, r := range d.Runs {
		out = append(out, r.Screenshots...)
	}
	return out
}

// AllCookies returns every cookie-jar entry across runs.
func (d *Dataset) AllCookies() []webos.StoredCookie {
	var out []webos.StoredCookie
	for _, r := range d.Runs {
		out = append(out, r.Cookies...)
	}
	return out
}

// ChannelNames returns the union of channel names across all runs.
func (d *Dataset) ChannelNames() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, r := range d.Runs {
		for _, c := range r.Channels {
			if _, ok := seen[c.Name]; !ok {
				seen[c.Name] = struct{}{}
				out = append(out, c.Name)
			}
		}
	}
	return out
}

// ChannelInfo returns the first run's metadata for the named channel.
func (d *Dataset) ChannelInfo(name string) *ChannelInfo {
	for _, r := range d.Runs {
		if c := r.Channel(name); c != nil {
			return c
		}
	}
	return nil
}

// flowRecord is the flattened NDJSON export schema.
type flowRecord struct {
	Run       RunName   `json:"run"`
	Time      time.Time `json:"time"`
	Method    string    `json:"method"`
	URL       string    `json:"url"`
	HTTPS     bool      `json:"https"`
	Status    int       `json:"status"`
	Size      int64     `json:"size"`
	Type      string    `json:"contentType"`
	Referer   string    `json:"referer,omitempty"`
	Channel   string    `json:"channel,omitempty"`
	ChannelID string    `json:"channelId,omitempty"`
}

// ExportFlows writes all flows as NDJSON — the "push to BigQuery" step.
func (d *Dataset) ExportFlows(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range d.Runs {
		for _, f := range r.Flows {
			rec := flowRecord{
				Run:       r.Name,
				Time:      f.Time,
				Method:    f.Method,
				URL:       f.URL.String(),
				HTTPS:     f.HTTPS,
				Status:    f.StatusCode,
				Size:      f.ResponseSize,
				Type:      f.ContentType(),
				Referer:   f.Referer(),
				Channel:   f.Channel,
				ChannelID: f.ChannelID,
			}
			if err := enc.Encode(&rec); err != nil {
				return fmt.Errorf("store: export flow: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Summary is a compact per-run description for reports and logs.
type Summary struct {
	Run             RunName `json:"run"`
	Channels        int     `json:"channels"`
	HTTPRequests    int     `json:"httpRequests"`
	HTTPSShare      float64 `json:"httpsShare"`
	Cookies         int     `json:"cookies"`
	Storage         int     `json:"localStorage"`
	Screenshots     int     `json:"screenshots"`
	LogEntries      int     `json:"logEntries"`
	RecoveredPanics int     `json:"recoveredPanics,omitempty"`
	// Resilience tallies, from the run's per-channel outcome records.
	FailedChannels      int `json:"failedChannels,omitempty"`
	SkippedChannels     int `json:"skippedChannels,omitempty"`
	QuarantinedChannels int `json:"quarantinedChannels,omitempty"`
	// RetriedChannels counts channels that needed more than one attempt.
	RetriedChannels int `json:"retriedChannels,omitempty"`
}

// Summaries returns a per-run overview.
func (d *Dataset) Summaries() []Summary {
	out := make([]Summary, 0, len(d.Runs))
	for _, r := range d.Runs {
		s := Summary{
			Run:             r.Name,
			Channels:        len(r.Channels),
			HTTPRequests:    len(r.Flows),
			HTTPSShare:      r.HTTPSShare(),
			Cookies:         len(r.Cookies),
			Storage:         len(r.Storage),
			Screenshots:     len(r.Screenshots),
			LogEntries:      len(r.Logs),
			RecoveredPanics: r.RecoveredPanics,
		}
		for _, o := range r.Outcomes {
			switch o.Status {
			case OutcomeFailed:
				s.FailedChannels++
			case OutcomeSkipped:
				s.SkippedChannels++
			case OutcomeQuarantined:
				s.QuarantinedChannels++
			}
			if o.Attempts > 1 {
				s.RetriedChannels++
			}
		}
		out = append(out, s)
	}
	return out
}
