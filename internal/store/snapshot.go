package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/intern"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file implements the binary snapshot format — the fast on-disk twin
// of the gzip-JSON format in json.go. Every string a dataset repeats (hosts,
// header names and values, channel names, log details) is stored once in a
// shared table, every body once in a deduplicated blob table, and records
// reference them by dense integer ID. Loading a snapshot rebuilds the
// dataset by table lookup instead of JSON decoding and URL re-parsing,
// which is what makes paper-scale loads land at a fraction of the gzip-JSON
// cost.
//
// Layout (all integers are varints, "uv" = unsigned, "v" = signed; strings
// are uv IDs into the string table; times are a presence byte + v unix
// nanoseconds, absent = the zero time):
//
//	magic "HBTV", version byte
//	sections, each: tag byte, uv payload length, payload
//	  tag 1  string table: uv count, then per string uv len + bytes
//	  tag 2  blob table:   uv count, then per blob   uv len + bytes
//	  tag 3  run:          name, date,
//	                       channels (uv count+1, 0 = nil: name, id,
//	                         satellite, language, uv category count +
//	                         categories, show, genre),
//	                       cookies (uv count: name, value, domain, path,
//	                         expires, created, host-only byte, set-by),
//	                       storage (uv count: origin, key, value),
//	                       screenshots (uv count: time, channel, channel-id,
//	                         has-signal byte, show, uv overlay-JSON ref,
//	                         0 = none else string ID + 1),
//	                       logs (uv count: time, kind, detail),
//	                       outcomes (uv count: channel, status, v attempts,
//	                         error),
//	                       v recovered-panics,
//	                       uv flow count, then flow chunks (snapFlowChunk
//	                         records each): uv byte length + records
//	  tag 4  telemetry:    telemetry.Snapshot as JSON
//	  tag 5  request-header table:  uv count, per block uv len + bytes
//	  tag 6  response-header table: uv count, per block uv len + bytes
//	  tag 7  shard manifest: ShardManifest as JSON (fleet shard datasets
//	         only; written before every other section so fleet tooling can
//	         read a shard's identity without decoding the data)
//	  tag 8  span trace:     telemetry.Trace as JSON
//	  tag 9  checkpoint:     Checkpoint metadata as JSON (checkpoint files
//	         only — see checkpoint.go; written first, one tag-3 run section
//	         follows per cell; the dataset loader skips it)
//	  tag 10 end marker:     empty payload, always the last section; its
//	         absence tells the loader the file was cut at a section
//	         boundary (mid-section cuts fail the section framing itself)
//
// Flow records are framed in length-prefixed chunks so the loader can
// decode chunks concurrently — records themselves are variable-length, and
// without the frame a reader could not split the stream without scanning
// every varint serially.
//
// Unknown tags are skipped on read — the length prefix makes every section
// self-delimiting, so the format can grow without breaking old readers.
// Both tables are written before the first run section; string and blob
// IDs are first-occurrence dense indices, so a snapshot of a given dataset
// is byte-deterministic.
//
// Flow record:
//
//	flags byte: bit0 HTTPS, bit1 URL stored decomposed, bit2 time non-zero
//	v  id
//	v  time (unix nanoseconds; only when flags bit2)
//	uv method string ID
//	URL: decomposed (uv scheme, host, path, rawquery IDs) when bit1,
//	     else uv full-URL string ID
//	uv request-header table ID
//	uv request-body blob ref (0 = none, else blob ID + 1)
//	v  status
//	uv response-header table ID
//	v  response size
//	uv response-body blob ref
//	uv channel ID, uv channel-ID ID
//
// Header blocks live in two deduplicated tables (request / response); a
// block is "uv count, per entry uv name ID + uv joined-value ID", and
// response blocks append "uv count + uv value IDs" for Set-Cookie, which
// the flattened form carries separately exactly like the JSON format
// (multi-values joined with "\n"). Dataset header shapes have tiny
// cardinality next to flow counts, so the table turns per-flow header
// reconstruction into one index lookup at load time. A flow's URL is
// stored decomposed only when reassembling scheme://host/path?query is
// provably identical to re-parsing the URL's string form — so a snapshot
// load is indistinguishable from a JSON load, field for field. The digest
// equivalence of the two formats is enforced by TestSnapshotRoundTrip.

const (
	snapshotMagic0 = 'H'
	snapshotMagic1 = 'B'
	snapshotMagic  = "HBTV"
	snapshotVer    = 1

	secStrings    = 1
	secBlobs      = 2
	secRun        = 3
	secTelemetry  = 4
	secReqHdrs    = 5
	secRespHdrs   = 6
	secShard      = 7
	secTrace      = 8
	secCheckpoint = 9
	secEnd        = 10

	flowFlagHTTPS   = 1 << 0
	flowFlagFastURL = 1 << 1
	flowFlagHasTime = 1 << 2

	// snapFlowChunk is how many flow records one length-prefixed chunk
	// holds — the unit of parallel decoding.
	snapFlowChunk = 2048
)

// sniffReader is the buffered reader Load uses to peek at magic bytes.
type sniffReader = bufio.Reader

func newSniffReader(r io.Reader) *sniffReader {
	if br, ok := r.(*bufio.Reader); ok {
		return br
	}
	return bufio.NewReaderSize(r, 1<<16)
}

// snapWriter accumulates the snapshot payload.
type snapWriter struct {
	buf []byte
}

func (w *snapWriter) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *snapWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *snapWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *snapWriter) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// snapReader decodes a snapshot payload from an in-memory byte slice,
// capturing the first error.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("store: snapshot: "+format, args...)
	}
}

func (r *snapReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)-r.off) < n {
		r.fail("truncated blob at offset %d", r.off)
		return nil
	}
	b := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *snapReader) str(tab []string) string {
	id := r.uvarint()
	if r.err != nil {
		return ""
	}
	if id >= uint64(len(tab)) {
		r.fail("string id %d out of range", id)
		return ""
	}
	return tab[id]
}

// blobTable deduplicates byte blobs (request/response bodies) at save time.
type blobTable struct {
	ids   map[string]uint64
	blobs [][]byte
}

func newBlobTable() *blobTable {
	return &blobTable{ids: make(map[string]uint64, 256)}
}

// ref returns the blob reference for b: 0 for none, blob ID + 1 otherwise.
func (t *blobTable) ref(b []byte) uint64 {
	if len(b) == 0 {
		return 0
	}
	if id, ok := t.ids[string(b)]; ok {
		return id + 1
	}
	id := uint64(len(t.blobs))
	t.ids[string(b)] = id
	t.blobs = append(t.blobs, b)
	return id + 1
}

// headerTable deduplicates encoded header blocks at save time. Blocks are
// keyed (and stored) by their exact bytes, so identical headers collapse to
// one dense ID no matter which flow carried them.
type headerTable struct {
	ids    map[string]uint64
	blocks []string
}

func newHeaderTable() *headerTable {
	return &headerTable{ids: make(map[string]uint64, 64)}
}

// ref returns the dense ID for the block, copying it on first sight (the
// caller reuses its scratch buffer).
func (t *headerTable) ref(block []byte) uint64 {
	if id, ok := t.ids[string(block)]; ok {
		return id
	}
	id := uint64(len(t.blocks))
	key := string(block)
	t.ids[key] = id
	t.blocks = append(t.blocks, key)
	return id
}

// SaveSnapshot writes the dataset in the binary snapshot format.
//
// Deprecated: call Save(w, d, FormatSnapshot); this method remains as a
// thin wrapper for older call sites.
func (d *Dataset) SaveSnapshot(w io.Writer) error { return d.saveSnapshot(w) }

// saveSnapshot writes the dataset in the binary snapshot format. The output
// is deterministic: saving the same dataset twice yields identical bytes.
func (d *Dataset) saveSnapshot(w io.Writer) error {
	tab := intern.NewStrings(1024)
	tab.Intern("") // ID 0 is the empty string
	blobs := newBlobTable()

	// Pass 1: encode run sections into memory, building the tables.
	runSecs := make([][]byte, 0, len(d.Runs))
	scratch := flowSnapScratch{reqTab: newHeaderTable(), respTab: newHeaderTable()}
	for _, run := range d.Runs {
		sec, err := encodeRunSnapshot(run, tab, blobs, &scratch)
		if err != nil {
			return err
		}
		runSecs = append(runSecs, sec)
	}

	// Pass 2: emit header, tables, runs, telemetry.
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeSnapshotHeader(bw); err != nil {
		return err
	}

	// The shard manifest leads so fleet tooling can identify a shard file
	// from its first section; readers predating the fleet layer skip the
	// unknown tag.
	if d.Shard != nil {
		raw, err := json.Marshal(d.Shard)
		if err != nil {
			return fmt.Errorf("store: snapshot: marshal shard manifest: %w", err)
		}
		if err := writeSection(bw, secShard, raw); err != nil {
			return err
		}
	}

	if err := writeSnapshotTables(bw, tab, blobs, &scratch); err != nil {
		return err
	}

	for _, sec := range runSecs {
		if err := writeSection(bw, secRun, sec); err != nil {
			return err
		}
	}

	if d.Telemetry != nil {
		raw, err := json.Marshal(d.Telemetry)
		if err != nil {
			return fmt.Errorf("store: snapshot: marshal telemetry: %w", err)
		}
		if err := writeSection(bw, secTelemetry, raw); err != nil {
			return err
		}
	}
	if d.Trace != nil {
		raw, err := json.Marshal(d.Trace)
		if err != nil {
			return fmt.Errorf("store: snapshot: marshal trace: %w", err)
		}
		if err := writeSection(bw, secTrace, raw); err != nil {
			return err
		}
	}
	// The end marker makes truncation at a section boundary detectable —
	// without it a file cut between sections loads "cleanly" with runs
	// silently missing.
	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// writeSnapshotHeader emits the container preamble: magic and version.
func writeSnapshotHeader(bw *bufio.Writer) error {
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := bw.WriteByte(snapshotVer); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// writeSnapshotTables emits the shared string, blob, and header tables,
// which every run section written after them references by dense ID. The
// checkpoint writer shares this path with saveSnapshot, so checkpoint
// files are ordinary snapshot containers.
func writeSnapshotTables(bw *bufio.Writer, tab *intern.Strings, blobs *blobTable, scratch *flowSnapScratch) error {
	var sw snapWriter
	sw.uvarint(uint64(tab.Len()))
	for _, s := range tab.All() {
		sw.uvarint(uint64(len(s)))
		sw.buf = append(sw.buf, s...)
	}
	if err := writeSection(bw, secStrings, sw.buf); err != nil {
		return err
	}

	sw.buf = sw.buf[:0]
	sw.uvarint(uint64(len(blobs.blobs)))
	for _, b := range blobs.blobs {
		sw.bytes(b)
	}
	if err := writeSection(bw, secBlobs, sw.buf); err != nil {
		return err
	}

	for _, ht := range []struct {
		tag byte
		tab *headerTable
	}{{secReqHdrs, scratch.reqTab}, {secRespHdrs, scratch.respTab}} {
		sw.buf = sw.buf[:0]
		sw.uvarint(uint64(len(ht.tab.blocks)))
		for _, b := range ht.tab.blocks {
			sw.uvarint(uint64(len(b)))
			sw.buf = append(sw.buf, b...)
		}
		if err := writeSection(bw, ht.tag, sw.buf); err != nil {
			return err
		}
	}
	return nil
}

func writeSection(w *bufio.Writer, tag byte, payload []byte) error {
	if err := w.WriteByte(tag); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// flowSnapScratch is the per-save reusable state for flow encoding.
type flowSnapScratch struct {
	req     map[string]string
	resp    map[string]string
	keys    []string
	hw      snapWriter
	reqTab  *headerTable
	respTab *headerTable
}

// str writes the string's table reference, interning it on first sight.
func (w *snapWriter) str(tab *intern.Strings, s string) {
	w.uvarint(uint64(tab.Intern(s)))
}

// time writes a presence byte and, for non-zero times, the unix
// nanoseconds. The zero time has no representable UnixNano (year 1
// overflows int64), hence the sentinel.
func (w *snapWriter) time(t time.Time) {
	if t.IsZero() {
		w.byte(0)
		return
	}
	w.byte(1)
	w.varint(t.UnixNano())
}

// encodeRunSnapshot encodes one run section: binary metadata over the
// string table, then the binary flow records.
func encodeRunSnapshot(run *RunData, tab *intern.Strings, blobs *blobTable, scratch *flowSnapScratch) ([]byte, error) {
	if scratch.req == nil {
		scratch.req = make(map[string]string, 8)
		scratch.resp = make(map[string]string, 8)
	}
	var w snapWriter
	w.str(tab, string(run.Name))
	w.time(run.Date)
	// Channels passes through nil-vs-empty verbatim in the JSON format, so
	// the count is shifted by one to keep the distinction: 0 = nil.
	if run.Channels == nil {
		w.uvarint(0)
	} else {
		w.uvarint(uint64(len(run.Channels)) + 1)
		for i := range run.Channels {
			c := &run.Channels[i]
			w.str(tab, c.Name)
			w.str(tab, c.ID)
			w.str(tab, c.Satellite)
			w.str(tab, c.Language)
			w.uvarint(uint64(len(c.Categories)))
			for _, cat := range c.Categories {
				w.str(tab, string(cat))
			}
			w.str(tab, c.Show)
			w.str(tab, c.Genre)
		}
	}
	w.uvarint(uint64(len(run.Cookies)))
	for i := range run.Cookies {
		c := &run.Cookies[i]
		w.str(tab, c.Name)
		w.str(tab, c.Value)
		w.str(tab, c.Domain)
		w.str(tab, c.Path)
		w.time(c.Expires)
		w.time(c.Created)
		if c.HostOnly {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.str(tab, c.SetBy)
	}
	w.uvarint(uint64(len(run.Storage)))
	for i := range run.Storage {
		s := &run.Storage[i]
		w.str(tab, s.Origin)
		w.str(tab, s.Key)
		w.str(tab, s.Value)
	}
	w.uvarint(uint64(len(run.Screenshots)))
	for i := range run.Screenshots {
		s := &run.Screenshots[i]
		w.time(s.Time)
		w.str(tab, s.Channel)
		w.str(tab, s.ChannelID)
		if s.HasSignal {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.str(tab, s.Show)
		if s.Overlay == nil {
			w.uvarint(0)
		} else {
			// Overlays repeat from a small set of consent/app specs, so
			// their JSON form interns well — and the loader parses each
			// distinct overlay once.
			raw, err := json.Marshal(s.Overlay)
			if err != nil {
				return nil, fmt.Errorf("store: snapshot: marshal overlay: %w", err)
			}
			w.uvarint(uint64(tab.InternBytes(raw)) + 1)
		}
	}
	w.uvarint(uint64(len(run.Logs)))
	for i := range run.Logs {
		l := &run.Logs[i]
		w.time(l.Time)
		w.str(tab, string(l.Kind))
		w.str(tab, l.Detail)
	}
	w.uvarint(uint64(len(run.Outcomes)))
	for i := range run.Outcomes {
		o := &run.Outcomes[i]
		w.str(tab, o.Channel)
		w.str(tab, string(o.Status))
		w.varint(int64(o.Attempts))
		w.str(tab, o.Error)
	}
	w.varint(int64(run.RecoveredPanics))
	w.uvarint(uint64(len(run.Flows)))
	var cw snapWriter
	for lo := 0; lo < len(run.Flows); lo += snapFlowChunk {
		hi := min(lo+snapFlowChunk, len(run.Flows))
		cw.buf = cw.buf[:0]
		for _, f := range run.Flows[lo:hi] {
			encodeFlowSnapshot(&cw, f, tab, blobs, scratch)
		}
		w.bytes(cw.buf)
	}
	return w.buf, nil
}

func encodeFlowSnapshot(w *snapWriter, f *proxy.Flow, tab *intern.Strings, blobs *blobTable, scratch *flowSnapScratch) {
	urlStr := f.URL.String()
	fast := url.URL{Scheme: f.URL.Scheme, Host: f.URL.Host, Path: f.URL.Path, RawQuery: f.URL.RawQuery}
	fastOK := false
	if reparsed, err := url.Parse(urlStr); err == nil && *reparsed == fast {
		// Reassembling the four components is provably identical to
		// re-parsing the string form, so the loader can skip url.Parse.
		fastOK = true
	}

	var flags byte
	if f.HTTPS {
		flags |= flowFlagHTTPS
	}
	if fastOK {
		flags |= flowFlagFastURL
	}
	if !f.Time.IsZero() {
		flags |= flowFlagHasTime
	}
	w.byte(flags)
	w.varint(f.ID)
	if !f.Time.IsZero() {
		w.varint(f.Time.UnixNano())
	}
	w.uvarint(uint64(tab.Intern(f.Method)))
	if fastOK {
		w.uvarint(uint64(tab.Intern(f.URL.Scheme)))
		w.uvarint(uint64(tab.Intern(f.URL.Host)))
		w.uvarint(uint64(tab.Intern(f.URL.Path)))
		w.uvarint(uint64(tab.Intern(f.URL.RawQuery)))
	} else {
		w.uvarint(uint64(tab.Intern(urlStr)))
	}
	scratch.hw.buf = scratch.hw.buf[:0]
	encodeSnapHeader(&scratch.hw, flattenInto(scratch.req, f.RequestHeaders), tab, scratch)
	w.uvarint(scratch.reqTab.ref(scratch.hw.buf))
	w.uvarint(blobs.ref(f.RequestBody))
	w.varint(int64(f.StatusCode))
	respHdr := flattenInto(scratch.resp, f.ResponseHeaders)
	if respHdr != nil {
		delete(respHdr, "Set-Cookie")
	}
	scratch.hw.buf = scratch.hw.buf[:0]
	encodeSnapHeader(&scratch.hw, respHdr, tab, scratch)
	setCookies := f.ResponseHeaders.Values("Set-Cookie")
	scratch.hw.uvarint(uint64(len(setCookies)))
	for _, sc := range setCookies {
		scratch.hw.uvarint(uint64(tab.Intern(sc)))
	}
	w.uvarint(scratch.respTab.ref(scratch.hw.buf))
	w.varint(f.ResponseSize)
	w.uvarint(blobs.ref(f.ResponseBody))
	w.uvarint(uint64(tab.Intern(f.Channel)))
	w.uvarint(uint64(tab.Intern(f.ChannelID)))
}

// encodeSnapHeader writes a flattened header map in sorted key order so the
// snapshot bytes are deterministic.
func encodeSnapHeader(w *snapWriter, m map[string]string, tab *intern.Strings, scratch *flowSnapScratch) {
	w.uvarint(uint64(len(m)))
	if len(m) == 0 {
		return
	}
	keys := scratch.keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	scratch.keys = keys
	for _, k := range keys {
		w.uvarint(uint64(tab.Intern(k)))
		w.uvarint(uint64(tab.Intern(m[k])))
	}
}

// readAllSized reads the rest of r into memory. Seekable inputs (files,
// bytes.Reader) reveal their remaining length up front, so the buffer is
// allocated once instead of grown through io.ReadAll's doubling copies —
// at paper scale that alone is a triple-digit-millisecond difference.
func readAllSized(r io.Reader) ([]byte, error) {
	if s, ok := r.(io.Seeker); ok {
		cur, errCur := s.Seek(0, io.SeekCurrent)
		end, errEnd := s.Seek(0, io.SeekEnd)
		if errCur == nil && errEnd == nil && end >= cur {
			if _, err := s.Seek(cur, io.SeekStart); err != nil {
				return nil, err
			}
			buf := make([]byte, end-cur)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			return buf, nil
		}
	}
	return io.ReadAll(r)
}

// LoadSnapshot reads a dataset written in FormatSnapshot.
func LoadSnapshot(r io.Reader) (*Dataset, error) {
	return loadSnapshot(r, nil)
}

// loadSnapshot reads a snapshot, optionally canonicalizing bodies and
// header blocks through a shared dedup table (see LoadDedup). Dedup
// happens at table-decode time — once per distinct blob/block, not once
// per flow — so the cost is proportional to the snapshot's content
// cardinality, and the parallel flow decode is untouched.
func loadSnapshot(r io.Reader, dd *Dedup) (*Dataset, error) {
	raw, err := readAllSized(r)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+1 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic")
	}
	if ver := raw[len(snapshotMagic)]; ver != snapshotVer {
		return nil, fmt.Errorf("store: unsupported snapshot version %d", ver)
	}
	sr := &snapReader{b: raw, off: len(snapshotMagic) + 1}

	dec := &snapDecoder{
		overlays: make(map[uint64]*appmodel.OverlaySpec, 16),
		dd:       dd,
	}
	d := &Dataset{}
	sawEnd := false
	for sr.err == nil && sr.off < len(sr.b) {
		tag := sr.byte()
		payload := sr.bytes()
		if sr.err != nil {
			break
		}
		ps := &snapReader{b: payload}
		switch tag {
		case secStrings:
			n := ps.uvarint()
			if n > uint64(len(payload)) {
				return nil, fmt.Errorf("store: snapshot: implausible string count %d", n)
			}
			dec.strs = make([]string, 0, n)
			for i := uint64(0); i < n && ps.err == nil; i++ {
				dec.strs = append(dec.strs, string(ps.bytes()))
			}
		case secBlobs:
			n := ps.uvarint()
			if n > uint64(len(payload)) {
				return nil, fmt.Errorf("store: snapshot: implausible blob count %d", n)
			}
			dec.blobs = make([][]byte, 0, n)
			for i := uint64(0); i < n && ps.err == nil; i++ {
				b := ps.bytes()
				// Blobs alias the file buffer; bodies are read-only
				// downstream, so no copy is needed.
				if dd != nil {
					b = dd.Blob(b)
				}
				dec.blobs = append(dec.blobs, b)
			}
		case secReqHdrs:
			dec.reqList = dec.decodeHeaderTable(ps, false)
		case secRespHdrs:
			dec.respList = dec.decodeHeaderTable(ps, true)
		case secRun:
			run, err := dec.decodeRun(ps)
			if err != nil {
				return nil, err
			}
			d.Runs = append(d.Runs, run)
		case secTelemetry:
			var snap telemetry.Snapshot
			if err := json.Unmarshal(payload, &snap); err != nil {
				return nil, fmt.Errorf("store: snapshot: telemetry: %w", err)
			}
			d.Telemetry = &snap
		case secShard:
			var m ShardManifest
			if err := json.Unmarshal(payload, &m); err != nil {
				return nil, fmt.Errorf("store: snapshot: shard manifest: %w", err)
			}
			d.Shard = &m
		case secTrace:
			var tr telemetry.Trace
			if err := json.Unmarshal(payload, &tr); err != nil {
				return nil, fmt.Errorf("store: snapshot: trace: %w", err)
			}
			d.Trace = &tr
		case secCheckpoint:
			// Checkpoint metadata (see checkpoint.go). A checkpoint file is
			// an ordinary snapshot container; the dataset loader skips the
			// resume bookkeeping and yields the cell runs as data.
		case secEnd:
			sawEnd = true
		default:
			// Unknown section from a newer writer: skip.
		}
		if ps.err != nil {
			return nil, ps.err
		}
	}
	if sr.err != nil {
		return nil, sr.err
	}
	if !sawEnd {
		return nil, fmt.Errorf("store: snapshot: truncated: missing end-of-snapshot marker (file cut at a section boundary?)")
	}
	return d, nil
}

// snapDecoder carries the per-load decode state. Each distinct header block
// in the two tables is built into an http.Header exactly once; flows then
// reference headers by index, so many flows share one map. Loaded datasets
// are read-only downstream, which makes that sharing safe.
type snapDecoder struct {
	strs     []string
	blobs    [][]byte
	reqList  []http.Header
	respList []http.Header
	// overlays caches parsed overlay specs by overlay-JSON string ID.
	overlays map[uint64]*appmodel.OverlaySpec
	// dd, when set, canonicalizes decoded blobs and header blocks across
	// loads sharing the table (fleet merge).
	dd *Dedup
}

// decodeHeaderTable builds every block of a header-table section.
func (d *snapDecoder) decodeHeaderTable(sr *snapReader, withSetCookie bool) []http.Header {
	n := sr.count()
	list := make([]http.Header, 0, n)
	for i := uint64(0); i < n && sr.err == nil; i++ {
		block := sr.bytes()
		if sr.err != nil {
			break
		}
		br := &snapReader{b: block}
		h := d.buildHeader(br, withSetCookie)
		if br.err != nil {
			sr.err = br.err
			break
		}
		if d.dd != nil {
			h = d.dd.Header(h)
		}
		list = append(list, h)
	}
	return list
}

// overlay parses the interned overlay-JSON string with the given table ID,
// caching the spec so each distinct overlay is parsed once per load.
func (d *snapDecoder) overlay(id uint64) (*appmodel.OverlaySpec, error) {
	if id >= uint64(len(d.strs)) {
		return nil, fmt.Errorf("store: snapshot: overlay id %d out of range", id)
	}
	if ov, ok := d.overlays[id]; ok {
		return ov, nil
	}
	var ov *appmodel.OverlaySpec
	if err := json.Unmarshal([]byte(d.strs[id]), &ov); err != nil {
		return nil, fmt.Errorf("store: snapshot: overlay: %w", err)
	}
	d.overlays[id] = ov
	return ov, nil
}

// time reads a presence byte + unix nanoseconds; absent = the zero time.
// time.Unix(0, ns).UTC() normalizes its location exactly like parsing the
// JSON format's "Z"-suffixed timestamps does, so both loaders produce
// deep-equal times.
func (r *snapReader) time() time.Time {
	if r.byte() == 0 {
		return time.Time{}
	}
	return time.Unix(0, r.varint()).UTC()
}

// count reads a length prefix and fails on values no well-formed payload
// can hold (each counted record needs at least one byte).
func (r *snapReader) count() uint64 {
	n := r.uvarint()
	if n > uint64(len(r.b)-r.off) {
		r.fail("implausible count %d at offset %d", n, r.off)
		return 0
	}
	return n
}

func (d *snapDecoder) decodeRun(sr *snapReader) (*RunData, error) {
	run := &RunData{}
	run.Name = RunName(sr.str(d.strs))
	run.Date = sr.time()
	if nch := sr.count(); nch > 0 {
		run.Channels = make([]ChannelInfo, nch-1)
		for i := range run.Channels {
			c := &run.Channels[i]
			c.Name = sr.str(d.strs)
			c.ID = sr.str(d.strs)
			c.Satellite = sr.str(d.strs)
			c.Language = sr.str(d.strs)
			if ncat := sr.count(); ncat > 0 {
				c.Categories = make([]dvb.ServiceCategory, ncat)
				for j := range c.Categories {
					c.Categories[j] = dvb.ServiceCategory(sr.str(d.strs))
				}
			}
			c.Show = sr.str(d.strs)
			c.Genre = sr.str(d.strs)
		}
	}
	if n := sr.count(); n > 0 {
		run.Cookies = make([]webos.StoredCookie, n)
		for i := range run.Cookies {
			c := &run.Cookies[i]
			c.Name = sr.str(d.strs)
			c.Value = sr.str(d.strs)
			c.Domain = sr.str(d.strs)
			c.Path = sr.str(d.strs)
			c.Expires = sr.time()
			c.Created = sr.time()
			c.HostOnly = sr.byte() == 1
			c.SetBy = sr.str(d.strs)
		}
	}
	if n := sr.count(); n > 0 {
		run.Storage = make([]webos.StorageItem, n)
		for i := range run.Storage {
			s := &run.Storage[i]
			s.Origin = sr.str(d.strs)
			s.Key = sr.str(d.strs)
			s.Value = sr.str(d.strs)
		}
	}
	if n := sr.count(); n > 0 {
		run.Screenshots = make([]webos.Screenshot, n)
		for i := range run.Screenshots {
			s := &run.Screenshots[i]
			s.Time = sr.time()
			s.Channel = sr.str(d.strs)
			s.ChannelID = sr.str(d.strs)
			s.HasSignal = sr.byte() == 1
			s.Show = sr.str(d.strs)
			if ref := sr.uvarint(); ref > 0 && sr.err == nil {
				ov, err := d.overlay(ref - 1)
				if err != nil {
					return nil, err
				}
				s.Overlay = ov
			}
		}
	}
	if n := sr.count(); n > 0 {
		run.Logs = make([]webos.LogEntry, n)
		for i := range run.Logs {
			l := &run.Logs[i]
			l.Time = sr.time()
			l.Kind = webos.LogKind(sr.str(d.strs))
			l.Detail = sr.str(d.strs)
		}
	}
	if n := sr.count(); n > 0 {
		run.Outcomes = make([]ChannelOutcome, n)
		for i := range run.Outcomes {
			o := &run.Outcomes[i]
			o.Channel = sr.str(d.strs)
			o.Status = OutcomeStatus(sr.str(d.strs))
			o.Attempts = int(sr.varint())
			o.Error = sr.str(d.strs)
		}
	}
	run.RecoveredPanics = int(sr.varint())
	if sr.err != nil {
		return nil, sr.err
	}
	nflows := sr.uvarint()
	if sr.err != nil {
		return nil, sr.err
	}
	if nflows > 0 {
		if nflows > uint64(len(sr.b)) {
			sr.fail("implausible flow count %d", nflows)
			return nil, sr.err
		}
		nchunks := int((nflows + snapFlowChunk - 1) / snapFlowChunk)
		chunks := make([][]byte, nchunks)
		for i := range chunks {
			chunks[i] = sr.bytes()
		}
		if sr.err != nil {
			return nil, sr.err
		}
		run.Flows = make([]*proxy.Flow, nflows)
		if err := d.decodeFlowChunks(run.Flows, chunks); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// decodeFlowChunks fills flows from the run's length-prefixed chunks,
// fanning the chunks out over GOMAXPROCS workers. Chunk i covers flows
// [i*snapFlowChunk, ...), so workers write disjoint slices; each chunk
// allocates its own flow and URL arenas, which parallelizes even the
// zeroing of the ~200 bytes/flow of output memory.
func (d *snapDecoder) decodeFlowChunks(flows []*proxy.Flow, chunks [][]byte) error {
	decodeOne := func(dec *snapDecoder, ci int) error {
		lo := ci * snapFlowChunk
		hi := min(lo+snapFlowChunk, len(flows))
		arena := make([]proxy.Flow, hi-lo)
		urls := make([]url.URL, hi-lo)
		cr := &snapReader{b: chunks[ci]}
		for i := range arena {
			dec.decodeFlow(cr, &arena[i], &urls[i])
			if cr.err != nil {
				return cr.err
			}
			flows[lo+i] = &arena[i]
		}
		if cr.off != len(cr.b) {
			return fmt.Errorf("store: snapshot: %d stray bytes after flow chunk %d", len(cr.b)-cr.off, ci)
		}
		return nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for ci := range chunks {
			if err := decodeOne(d, ci); err != nil {
				return err
			}
		}
		return nil
	}

	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Flow decoding only reads the decoder's tables (strings,
			// blobs, built headers), so workers share d freely.
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(chunks) {
					return
				}
				if err := decodeOne(d, ci); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *snapDecoder) decodeFlow(sr *snapReader, f *proxy.Flow, uslot *url.URL) {
	flags := sr.byte()
	f.ID = sr.varint()
	if flags&flowFlagHasTime != 0 {
		f.Time = time.Unix(0, sr.varint()).UTC()
	}
	f.Method = sr.str(d.strs)
	if flags&flowFlagFastURL != 0 {
		uslot.Scheme = sr.str(d.strs)
		uslot.Host = sr.str(d.strs)
		uslot.Path = sr.str(d.strs)
		uslot.RawQuery = sr.str(d.strs)
	} else {
		u, err := url.Parse(sr.str(d.strs))
		if err != nil {
			sr.fail("flow url: %v", err)
			return
		}
		*uslot = *u
	}
	f.URL = uslot
	f.HTTPS = flags&flowFlagHTTPS != 0
	f.RequestHeaders = headerRef(sr, d.reqList)
	f.RequestBody = d.blob(sr)
	f.StatusCode = int(sr.varint())
	f.ResponseHeaders = headerRef(sr, d.respList)
	f.ResponseSize = sr.varint()
	f.ResponseBody = d.blob(sr)
	f.Channel = sr.str(d.strs)
	f.ChannelID = sr.str(d.strs)
	// Hostname() slices into the interned Host string, so the cached host
	// shares its backing exactly like the JSON loader's interned copy.
	f.CacheHost(f.URL.Hostname())
}

func (d *snapDecoder) blob(sr *snapReader) []byte {
	ref := sr.uvarint()
	if ref == 0 || sr.err != nil {
		return nil
	}
	if ref > uint64(len(d.blobs)) {
		sr.fail("blob ref %d out of range", ref)
		return nil
	}
	return d.blobs[ref-1]
}

// headerRef resolves a flow's header-table reference: one varint read and
// one index — the hot path a snapshot load spends most of its time on.
func headerRef(sr *snapReader, list []http.Header) http.Header {
	id := sr.uvarint()
	if sr.err != nil {
		return nil
	}
	if id >= uint64(len(list)) {
		sr.fail("header table id %d out of range", id)
		return nil
	}
	return list[id]
}

// buildHeader rebuilds a header from its flattened snapshot form, splitting
// multi-valued entries exactly like the JSON loader.
func (d *snapDecoder) buildHeader(sr *snapReader, withSetCookie bool) http.Header {
	n := sr.uvarint()
	h := make(http.Header, n)
	for i := uint64(0); i < n && sr.err == nil; i++ {
		k := sr.str(d.strs)
		joined := sr.str(d.strs)
		if !strings.Contains(joined, "\n") {
			h[k] = []string{joined}
			continue
		}
		h[k] = strings.Split(joined, "\n")
	}
	if withSetCookie {
		if nsc := sr.uvarint(); nsc > 0 && sr.err == nil {
			scs := make([]string, 0, nsc)
			for i := uint64(0); i < nsc; i++ {
				scs = append(scs, sr.str(d.strs))
			}
			h["Set-Cookie"] = scs
		}
	}
	return h
}
