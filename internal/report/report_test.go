package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Count"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22,222")
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"Demo", "Name", "Count", "alpha", "beta-long-name", "22,222", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "Count" starts at the same offset in header and rows.
	hdrIdx := strings.Index(lines[1], "Count")
	if got := strings.Index(lines[4], "22,222"); got != hdrIdx {
		t.Errorf("column misaligned: header at %d, cell at %d", hdrIdx, got)
	}
}

func TestInt(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{0, "0"},
		{7, "7"},
		{999, "999"},
		{1000, "1,000"},
		{457492, "457,492"},
		{1234567, "1,234,567"},
		{-5, "-5"},
	}
	for _, tt := range tests {
		if got := Int(tt.n); got != tt.want {
			t.Errorf("Int(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestPctAndF2(t *testing.T) {
	if got := Pct(0.0556); got != "5.56%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(3.14159); got != "3.14" {
		t.Errorf("F2 = %q", got)
	}
}

func TestPValue(t *testing.T) {
	if got := PValue(0.00005); got != "< 0.0001" {
		t.Errorf("PValue small = %q", got)
	}
	if got := PValue(0.0321); got != "0.0321" {
		t.Errorf("PValue = %q", got)
	}
}

func TestDistribution(t *testing.T) {
	m := map[string]int{"xiti.com": 119, "tvping.com": 141, "rare.de": 1}
	got := Distribution(m, 2)
	if got != "tvping.com:141 xiti.com:119" {
		t.Errorf("Distribution = %q", got)
	}
	if Distribution(nil, 5) != "" {
		t.Error("empty distribution should be empty string")
	}
}
