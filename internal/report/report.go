// Package report renders the reproduced tables and figures in the paper's
// format, for terminal output and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wdt := range widths {
		total += wdt + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Int formats an integer with thousands separators, as the paper prints
// counts.
func Int(n int) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// Pct formats a ratio as a percentage with two decimals.
func Pct(r float64) string { return fmt.Sprintf("%.2f%%", r*100) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// PValue formats a p-value the way the paper reports significance.
func PValue(p float64) string {
	if p < 0.0001 {
		return "< 0.0001"
	}
	return fmt.Sprintf("%.4f", p)
}

// Distribution prints a sorted histogram line ("a:3 b:1 ...") capped at n
// entries — used for long-tail figures.
func Distribution(m map[string]int, n int) string {
	type kv struct {
		k string
		v int
	}
	rows := make([]kv, 0, len(m))
	for k, v := range m {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].v != rows[b].v {
			return rows[a].v > rows[b].v
		}
		return rows[a].k < rows[b].k
	})
	if n > len(rows) {
		n = len(rows)
	}
	parts := make([]string, 0, n)
	for _, r := range rows[:n] {
		parts = append(parts, fmt.Sprintf("%s:%d", r.k, r.v))
	}
	return strings.Join(parts, " ")
}
