package cookies

import (
	"net/http"
	"net/url"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

var (
	winStart = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	winEnd   = time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
)

func TestClassifyPurpose(t *testing.T) {
	tests := []struct {
		name  string
		want  Purpose
		known bool
	}{
		{"_ga", PurposePerformance, true},
		{"IDE", PurposeTargeting, true},
		{"xtuid", PurposePerformance, true},
		{"consent", PurposeNecessary, true},
		{"lang", PurposeFunctionality, true},
		{"zapid", PurposeUnknown, false},       // HbbTV-specific, unknown
		{"hbbtv_track", PurposeUnknown, false}, //
	}
	for _, tt := range tests {
		got, known := ClassifyPurpose(tt.name)
		if got != tt.want || known != tt.known {
			t.Errorf("ClassifyPurpose(%q) = (%v, %v), want (%v, %v)",
				tt.name, got, known, tt.want, tt.known)
		}
	}
}

func TestIsLikelyID(t *testing.T) {
	tests := []struct {
		value string
		want  bool
	}{
		{"ab12cd34ef", true},                  // 10 chars
		{"0123456789abcdef0123456", true},     // 23 chars
		{"short", false},                      // too short
		{"0123456789abcdef0123456789", false}, // 26 chars, too long
		{"1692615600", false},                 // Unix ts in window (Aug 2023)
		{"1692615600123", false},              // ms ts in window
		{"1262304000", true},                  // 2010 ts, outside window
		{"9999999999", true},                  // 2286, outside window
	}
	for _, tt := range tests {
		if got := IsLikelyID(tt.value, winStart, winEnd); got != tt.want {
			t.Errorf("IsLikelyID(%q) = %v, want %v", tt.value, got, tt.want)
		}
	}
}

func TestIDLenOnlyAblation(t *testing.T) {
	// The timestamp that the full heuristic excludes is accepted by the
	// length-only variant — the false-positive class.
	ts := "1692615600"
	if !IsLikelyIDLenOnly(ts) {
		t.Error("length-only heuristic should accept the timestamp")
	}
	if IsLikelyID(ts, winStart, winEnd) {
		t.Error("full heuristic must reject the in-window timestamp")
	}
}

func flowWithCookie(rawURL, channel, name, value string) *proxy.Flow {
	u, _ := url.Parse(rawURL)
	h := http.Header{}
	h.Add("Set-Cookie", (&http.Cookie{Name: name, Value: value, Path: "/"}).String())
	return &proxy.Flow{
		Time:            winStart,
		Method:          http.MethodGet,
		URL:             u,
		StatusCode:      200,
		Channel:         channel,
		RequestHeaders:  http.Header{},
		ResponseHeaders: h,
	}
}

func plainFlow(rawURL, channel string) *proxy.Flow {
	u, _ := url.Parse(rawURL)
	return &proxy.Flow{
		Time: winStart, Method: http.MethodGet, URL: u, StatusCode: 200,
		Channel: channel, RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
	}
}

func testRun() *store.RunData {
	return &store.RunData{
		Name: store.RunRed,
		Flows: []*proxy.Flow{
			flowWithCookie("http://hbbtv.ard.de/app", "Das Erste", "fpid", "aaaaaaaaaa11"),
			flowWithCookie("http://xiti.com/px", "Das Erste", "xtuid", "bbbbbbbbbb22"),
			flowWithCookie("http://xiti.com/px", "ZDF", "xtuid", "cccccccccc33"),
			flowWithCookie("http://tvping.com/t", "ZDF", "tvp", "dddddddddd44"),
			plainFlow("http://cdn.ard.de/app.js", "Das Erste"),
			flowWithCookie("http://orphan.de/x", "", "ghost", "eeeeeeeeee55"), // unattributed
		},
	}
}

var testFirstParty = map[string]string{"Das Erste": "ard.de", "ZDF": "zdf.de"}

func TestSetEvents(t *testing.T) {
	events := SetEvents(testRun(), testFirstParty)
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4 (unattributed skipped)", len(events))
	}
	if events[0].Party != "ard.de" || events[0].ThirdParty {
		t.Errorf("ard cookie = %+v, want first-party", events[0])
	}
	if !events[1].ThirdParty || events[1].Party != "xiti.com" {
		t.Errorf("xiti cookie = %+v, want third-party", events[1])
	}
}

func TestFirstThirdCounts(t *testing.T) {
	events := SetEvents(testRun(), testFirstParty)
	first, third := FirstThirdCounts(events)
	if first != 1 {
		t.Errorf("first = %d, want 1", first)
	}
	if third != 2 { // xiti.com/xtuid and tvping.com/tvp
		t.Errorf("third = %d, want 2", third)
	}
	if got := DistinctCookies(events); got != 3 {
		t.Errorf("distinct = %d, want 3", got)
	}
}

func TestAnalyzeThirdParty(t *testing.T) {
	events := SetEvents(testRun(), testFirstParty)
	u := AnalyzeThirdParty(store.RunRed, events)
	if u.Parties != 2 {
		t.Errorf("parties = %d, want 2", u.Parties)
	}
	if u.Cookies != 3 { // xiti on 2 channels + tvping on 1
		t.Errorf("cookies = %d, want 3", u.Cookies)
	}
	if u.PerParty.Mean != 1.5 {
		t.Errorf("per-party mean = %v, want 1.5", u.PerParty.Mean)
	}
	if got := u.ByChannel["ZDF"]; got != 2 {
		t.Errorf("ZDF third-party cookies = %d, want 2", got)
	}
}

func TestPartyChannelCounts(t *testing.T) {
	events := SetEvents(testRun(), testFirstParty)
	counts := PartyChannelCounts(events)
	if counts["xiti.com"] != 2 || counts["tvping.com"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if _, ok := counts["ard.de"]; ok {
		t.Error("first party counted as cookie-using third party")
	}
}

func TestDetectSyncing(t *testing.T) {
	run := testRun()
	// Add a sync: xiti's ID for Das Erste is forwarded to partner.de.
	syncURL, _ := url.Parse("http://partner.de/match?puid=bbbbbbbbbb22&src=xiti.com")
	run.Flows = append(run.Flows, &proxy.Flow{
		Time: winStart, Method: http.MethodGet, URL: syncURL, StatusCode: 200,
		Channel: "Das Erste", RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
	})
	events := SetEvents(run, testFirstParty)
	syncs := DetectSyncing([]*store.RunData{run}, events, winStart, winEnd)
	if len(syncs) != 1 {
		t.Fatalf("syncs = %+v, want 1", syncs)
	}
	s := syncs[0]
	if s.FromParty != "xiti.com" || s.ToParty != "partner.de" || s.Value != "bbbbbbbbbb22" {
		t.Errorf("sync = %+v", s)
	}
}

func TestDetectSyncingIgnoresSameParty(t *testing.T) {
	run := testRun()
	// The ID travelling back to its own minting party is not syncing.
	selfURL, _ := url.Parse("http://xiti.com/hit?uid=bbbbbbbbbb22")
	run.Flows = append(run.Flows, &proxy.Flow{
		Time: winStart, Method: http.MethodGet, URL: selfURL, StatusCode: 200,
		Channel: "Das Erste", RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
	})
	events := SetEvents(run, testFirstParty)
	if syncs := DetectSyncing([]*store.RunData{run}, events, winStart, winEnd); len(syncs) != 0 {
		t.Errorf("self-send flagged as sync: %+v", syncs)
	}
}

func TestDetectSyncingInPOSTBody(t *testing.T) {
	run := testRun()
	bodyURL, _ := url.Parse("http://dmp.example.com/ingest")
	run.Flows = append(run.Flows, &proxy.Flow{
		Time: winStart, Method: http.MethodPost, URL: bodyURL, StatusCode: 200,
		Channel: "ZDF", RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
		RequestBody: []byte(`{"partner_uid":"dddddddddd44"}`),
	})
	events := SetEvents(run, testFirstParty)
	syncs := DetectSyncing([]*store.RunData{run}, events, winStart, winEnd)
	if len(syncs) != 1 || syncs[0].FromParty != "tvping.com" {
		t.Errorf("POST-body sync = %+v", syncs)
	}
}

func TestPotentialIDs(t *testing.T) {
	run := testRun()
	// Add a timestamp cookie that must NOT count.
	run.Flows = append(run.Flows,
		flowWithCookie("http://cmp.de/c", "ZDF", "ctime", strconv.FormatInt(winStart.Add(time.Hour).Unix(), 10)))
	events := SetEvents(run, testFirstParty)
	if got := PotentialIDs(events, winStart, winEnd); got != 4 {
		t.Errorf("PotentialIDs = %d, want 4", got)
	}
}

// Property: values under 10 or over 25 chars are never IDs.
func TestIDLengthBandProperty(t *testing.T) {
	f := func(n uint8) bool {
		ln := int(n) % 40
		v := make([]byte, ln)
		for i := range v {
			v[i] = 'x'
		}
		got := IsLikelyID(string(v), winStart, winEnd)
		want := ln >= 10 && ln <= 25
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyzePurposes(t *testing.T) {
	run := testRun()
	// Add a classifiable targeting cookie and a consent cookie.
	run.Flows = append(run.Flows,
		flowWithCookie("http://ads.net/px", "ZDF", "uuid2", "ffffffffff99"),
		flowWithCookie("http://hbbtv.ard.de/app", "Das Erste", "consent", "all-1692615600"),
	)
	events := SetEvents(run, testFirstParty)
	d := AnalyzePurposes(store.RunRed, events)
	if d.Total != 5 {
		t.Fatalf("total = %d, want 5 distinct cookies", d.Total)
	}
	// xtuid (performance), uuid2 (targeting), consent (necessary) classify;
	// fpid and tvp do not.
	if d.Classified != 3 {
		t.Errorf("classified = %d, want 3 (%v)", d.Classified, d.ByPurpose)
	}
	if d.ByPurpose[PurposeTargeting] != 1 || d.ByPurpose[PurposePerformance] != 1 ||
		d.ByPurpose[PurposeNecessary] != 1 || d.ByPurpose[PurposeUnknown] != 2 {
		t.Errorf("distribution = %v", d.ByPurpose)
	}
	if got := d.CoverageShare(); got != 0.6 {
		t.Errorf("coverage = %v", got)
	}
	empty := AnalyzePurposes(store.RunGreen, events)
	if empty.Total != 0 || empty.CoverageShare() != 0 {
		t.Errorf("other-run distribution not empty: %+v", empty)
	}
}
