// Package cookies implements the cookie analyses of Section V-C: general
// cookie usage, Cookiepedia-style purpose classification, the identifier
// heuristic (10-25 characters, not a Unix timestamp in the measurement
// window), third-party cookie usage per measurement run (Table II), the
// long-tail distribution of cookie-using third parties (Fig. 5), and
// cookie-syncing detection (two parties exchanging an identifier through a
// redirect or parameter).
package cookies

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Purpose is a cookie purpose category, following Cookiepedia's taxonomy.
type Purpose string

// Cookie purposes.
const (
	PurposeNecessary     Purpose = "Strictly Necessary"
	PurposeFunctionality Purpose = "Functionality"
	PurposePerformance   Purpose = "Performance"
	PurposeTargeting     Purpose = "Targeting/Advertising"
	PurposeUnknown       Purpose = "Unknown"
)

// purposeDB is the Cookiepedia substitute: a name-pattern database built
// from widely-used Web cookie names. HbbTV-specific cookie names are not
// in it — which is why classification coverage in the HbbTV ecosystem
// (20.5%) falls far short of the Web (57%).
var purposeDB = map[string]Purpose{
	// Google Analytics / Tag Manager.
	"_ga": PurposePerformance, "_gid": PurposePerformance,
	"_gat": PurposePerformance, "_gcl_au": PurposeTargeting,
	"_utma": PurposePerformance, "_utmb": PurposePerformance,
	"_utmz": PurposePerformance,
	// Ad ecosystem.
	"ide": PurposeTargeting, "dsid": PurposeTargeting,
	"test_cookie": PurposeTargeting, "uuid2": PurposeTargeting,
	"anj": PurposeTargeting, "tuuid": PurposeTargeting,
	"criteo_id": PurposeTargeting, "cto_bundle": PurposeTargeting,
	"tluid": PurposeTargeting, "adsrv": PurposeTargeting,
	"adform_uid": PurposeTargeting,
	// AT Internet (xiti).
	"xtuid": PurposePerformance, "xtvrn": PurposePerformance,
	"atuserid": PurposePerformance,
	// Webtrekk / etracker / INFOnline.
	"wt3_eid": PurposePerformance, "wt3_sid": PurposePerformance,
	"et_coid": PurposePerformance, "ioma.sid": PurposePerformance,
	"i00": PurposePerformance,
	// CMP / consent state.
	"euconsent-v2": PurposeNecessary, "consentuuid": PurposeNecessary,
	"cmpconsent": PurposeNecessary, "consent": PurposeNecessary,
	"oil_data": PurposeNecessary,
	// Generic session/LB names.
	"phpsessid": PurposeNecessary, "jsessionid": PurposeNecessary,
	"session": PurposeNecessary, "lb": PurposeNecessary,
	"awselb": PurposeNecessary,
	// Preferences.
	"lang": PurposeFunctionality, "language": PurposeFunctionality,
	"tz": PurposeFunctionality, "volume": PurposeFunctionality,
}

// ClassifyPurpose looks a cookie name up in the purpose database. The
// second return reports whether the name was known (classification
// coverage). Site-scoped variants of known names ("uuid2_<site>") resolve
// to their base name, as Cookiepedia's fuzzy matching does.
func ClassifyPurpose(name string) (Purpose, bool) {
	low := strings.ToLower(name)
	if p, ok := purposeDB[low]; ok {
		return p, true
	}
	if i := strings.IndexByte(low, '_'); i > 0 {
		if p, ok := purposeDB[low[:i]]; ok {
			return p, true
		}
	}
	return PurposeUnknown, false
}

// IsLikelyID implements the adapted Acar et al. heuristic the paper uses:
// a cookie value is a potential identifier when it is 10-25 characters
// long and is not a valid Unix timestamp inside the measurement period.
func IsLikelyID(value string, windowStart, windowEnd time.Time) bool {
	if len(value) < 10 || len(value) > 25 {
		return false
	}
	if ts, err := strconv.ParseInt(value, 10, 64); err == nil {
		t := time.Unix(ts, 0)
		if !t.Before(windowStart) && !t.After(windowEnd) {
			return false
		}
		// Millisecond timestamps are also common.
		tm := time.Unix(0, ts*int64(time.Millisecond))
		if !tm.Before(windowStart) && !tm.After(windowEnd) {
			return false
		}
	}
	return true
}

// IsLikelyIDLenOnly is the heuristic without the timestamp exclusion —
// the ablation variant (BenchmarkIDHeuristic) showing why the paper added
// the exclusion.
func IsLikelyIDLenOnly(value string) bool {
	return len(value) >= 10 && len(value) <= 25
}

// SetEvent is one observed Set-Cookie, attributed to a channel and party.
// It is an alias of store.CookieSetEvent so the single-pass dataset index
// (store.BuildIndex) can collect events directly; SetEvents remains the
// standalone extractor for callers without an index.
type SetEvent = store.CookieSetEvent

// SetEvents extracts every Set-Cookie observation from a run's flows,
// classifying each as first- or third-party relative to the channel's
// identified first party. Unattributed flows are skipped.
func SetEvents(run *store.RunData, firstParty map[string]string) []SetEvent {
	var out []SetEvent
	for _, f := range run.Flows {
		if f.Channel == "" {
			continue
		}
		cs := f.SetCookies()
		if len(cs) == 0 {
			continue
		}
		party := etld.MustRegistrableDomain(f.Host())
		fp := firstParty[f.Channel]
		for _, c := range cs {
			out = append(out, SetEvent{
				Run:        run.Name,
				Channel:    f.Channel,
				Party:      party,
				Host:       f.Host(),
				Name:       c.Name,
				Value:      c.Value,
				ThirdParty: fp != "" && party != fp,
			})
		}
	}
	return out
}

// DistinctCookies counts distinct (party, name) cookies among events.
func DistinctCookies(events []SetEvent) int {
	seen := make(map[[2]string]struct{})
	for _, e := range events {
		seen[[2]string{e.Party, e.Name}] = struct{}{}
	}
	return len(seen)
}

// FirstThirdCounts returns the number of distinct first-party and
// third-party (channel, party, name) cookie observations, matching Table
// I's convention where a cookie can be first-party on one channel and
// third-party on another.
func FirstThirdCounts(events []SetEvent) (first, third int) {
	fp := make(map[[2]string]struct{})
	tp := make(map[[2]string]struct{})
	for _, e := range events {
		key := [2]string{e.Party, e.Name}
		if e.ThirdParty {
			tp[key] = struct{}{}
		} else {
			fp[key] = struct{}{}
		}
	}
	return len(fp), len(tp)
}

// ThirdPartyUsage summarizes third-party cookie-setting for one run —
// one row of Table II.
type ThirdPartyUsage struct {
	Run       store.RunName
	Parties   int // distinct third parties that set cookies
	Cookies   int // distinct third-party (party, name, channel) cookies
	PerParty  stats.Desc
	PerChan   stats.Desc
	ByChannel map[string]int
}

// AnalyzeThirdParty computes Table II's row for the given events.
func AnalyzeThirdParty(run store.RunName, events []SetEvent) ThirdPartyUsage {
	parties := make(map[string]map[[2]string]struct{}) // party -> set of (channel,name)
	byChannel := make(map[string]map[[2]string]struct{})
	cookieCount := 0
	seen := make(map[[3]string]struct{})
	for _, e := range events {
		if !e.ThirdParty || e.Run != run {
			continue
		}
		key := [3]string{e.Channel, e.Party, e.Name}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		cookieCount++
		if parties[e.Party] == nil {
			parties[e.Party] = make(map[[2]string]struct{})
		}
		parties[e.Party][[2]string{e.Channel, e.Name}] = struct{}{}
		if byChannel[e.Channel] == nil {
			byChannel[e.Channel] = make(map[[2]string]struct{})
		}
		byChannel[e.Channel][[2]string{e.Party, e.Name}] = struct{}{}
	}
	u := ThirdPartyUsage{
		Run:       run,
		Parties:   len(parties),
		Cookies:   cookieCount,
		ByChannel: make(map[string]int, len(byChannel)),
	}
	// Iterate sorted keys: stats.Describe sums floats, so map-order
	// iteration would let the SD drift by an ulp between runs.
	var perParty []float64
	for _, p := range sortedKeys(parties) {
		perParty = append(perParty, float64(len(parties[p])))
	}
	var perChan []float64
	for _, ch := range sortedKeys(byChannel) {
		set := byChannel[ch]
		perChan = append(perChan, float64(len(set)))
		u.ByChannel[ch] = len(set)
	}
	u.PerParty = stats.Describe(perParty)
	u.PerChan = stats.Describe(perChan)
	return u
}

// PartyChannelCounts returns, per third party, the number of distinct
// channels it set cookies on — the Fig. 5 long-tail distribution.
func PartyChannelCounts(events []SetEvent) map[string]int {
	chans := make(map[string]map[string]struct{})
	for _, e := range events {
		if !e.ThirdParty {
			continue
		}
		if chans[e.Party] == nil {
			chans[e.Party] = make(map[string]struct{})
		}
		chans[e.Party][e.Channel] = struct{}{}
	}
	out := make(map[string]int, len(chans))
	for p, set := range chans {
		out[p] = len(set)
	}
	return out
}

// PurposeDistribution counts distinct cookies per purpose category for one
// run — the supplementary-material table behind the finding that color-
// button runs show more classifiable (and more "Targeting") cookies.
type PurposeDistribution struct {
	Run store.RunName
	// ByPurpose counts distinct (party, name) cookies per category.
	ByPurpose map[Purpose]int
	// Classified / Total give the coverage ratio.
	Classified int
	Total      int
}

// CoverageShare returns the classified fraction.
func (d PurposeDistribution) CoverageShare() float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.Classified) / float64(d.Total)
}

// AnalyzePurposes computes the per-run purpose distribution from events.
func AnalyzePurposes(run store.RunName, events []SetEvent) PurposeDistribution {
	d := PurposeDistribution{Run: run, ByPurpose: make(map[Purpose]int)}
	seen := make(map[[2]string]struct{})
	for _, e := range events {
		if e.Run != run {
			continue
		}
		key := [2]string{e.Party, e.Name}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		d.Total++
		if p, known := ClassifyPurpose(e.Name); known {
			d.Classified++
			d.ByPurpose[p]++
		} else {
			d.ByPurpose[PurposeUnknown]++
		}
	}
	return d
}

// SyncEvent is one detected cookie-sync: an identifier minted by FromParty
// observed in a request to ToParty.
type SyncEvent struct {
	FromParty string
	ToParty   string
	Value     string
	Channel   string
	Run       store.RunName
}

// DetectSyncing finds identifier cookie values that were transmitted to a
// different party in a URL or request body — the paper's two-step syncing
// definition. windowStart/windowEnd bound the timestamp exclusion.
func DetectSyncing(runs []*store.RunData, events []SetEvent, windowStart, windowEnd time.Time) []SyncEvent {
	idOwners := MintedIDs(events, windowStart, windowEnd)
	var out []SyncEvent
	seen := make(map[[3]string]struct{})
	for _, run := range runs {
		for _, f := range run.Flows {
			scanFlowSyncs(idOwners, f.URL.RawQuery, f.RequestBody,
				func() string { return etld.MustRegistrableDomain(f.Host()) },
				f.Channel, run.Name, seen, &out)
		}
	}
	return out
}

// MintedIDs indexes potential-identifier cookie values by the parties that
// minted them — step one of the syncing definition.
func MintedIDs(events []SetEvent, windowStart, windowEnd time.Time) map[string][]string {
	idOwners := make(map[string][]string) // value -> parties that set it
	for _, e := range events {
		if !IsLikelyID(e.Value, windowStart, windowEnd) {
			continue
		}
		found := false
		for _, p := range idOwners[e.Value] {
			if p == e.Party {
				found = true
				break
			}
		}
		if !found {
			idOwners[e.Value] = append(idOwners[e.Value], e.Party)
		}
	}
	return idOwners
}

// scanFlowSyncs runs step two of the syncing definition for one flow,
// appending deduplicated sync events to out. seen carries the
// (owner, target, value) dedup state across flows; the first flow — in
// whatever order the caller iterates — wins the Channel/Run attribution
// of a sync triple.
func scanFlowSyncs(idOwners map[string][]string, rawQuery string, body []byte,
	targetParty func() string, channel string, run store.RunName,
	seen map[[3]string]struct{}, out *[]SyncEvent) {
	haystack := rawQuery
	if len(body) > 0 {
		haystack += "&" + string(body)
	}
	if haystack == "" {
		return
	}
	target := ""
	// Identifiers travel as URL/body parameter values; match whole
	// tokens against the minted-ID index rather than scanning every
	// known value as a substring.
	forEachToken(haystack, func(token string) {
		owners, ok := idOwners[token]
		if !ok {
			return
		}
		if target == "" {
			target = targetParty()
		}
		for _, owner := range owners {
			if owner == target {
				continue
			}
			key := [3]string{owner, target, token}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			*out = append(*out, SyncEvent{
				FromParty: owner,
				ToParty:   target,
				Value:     token,
				Channel:   channel,
				Run:       run,
			})
		}
	})
}

// ScanSyncing is the chunked form of DetectSyncing's flow scan: it runs
// step two over rows [lo, hi) of a columnar index with chunk-local dedup
// only. Chunks must be merged in row order with MergeSyncEvents, which
// re-applies the global first-occurrence dedup — the composition emits
// exactly DetectSyncing's event sequence. Requires a columnar index
// (panics on a reference build).
func ScanSyncing(idOwners map[string][]string, ix *store.Index, lo, hi int) []SyncEvent {
	cols := ix.Columns()
	var out []SyncEvent
	seen := make(map[[3]string]struct{})
	for i := lo; i < hi; i++ {
		f := cols.Flows[i]
		party := func() string { return cols.Party(i) }
		scanFlowSyncs(idOwners, f.URL.RawQuery, f.RequestBody, party,
			f.Channel, cols.RunName(i), seen, &out)
	}
	return out
}

// MergeSyncEvents concatenates per-chunk ScanSyncing output in chunk
// order, dropping later duplicates of the same (owner, target, value)
// triple — the serial dedup semantics, where the earliest flow wins the
// attribution.
func MergeSyncEvents(parts [][]SyncEvent) []SyncEvent {
	var out []SyncEvent
	seen := make(map[[3]string]struct{})
	for _, p := range parts {
		for _, s := range p {
			key := [3]string{s.FromParty, s.ToParty, s.Value}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// forEachToken calls fn for every maximal alphanumeric run in s — the
// token shape identifiers take inside query strings and JSON bodies.
func forEachToken(s string, fn func(token string)) {
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		isWord := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
		if isWord {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			fn(s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		fn(s[start:])
	}
}

// PotentialIDs counts distinct cookie values among events that pass the ID
// heuristic (the paper identified 14,236 such values).
func PotentialIDs(events []SetEvent, windowStart, windowEnd time.Time) int {
	seen := make(map[string]struct{})
	for _, e := range events {
		if IsLikelyID(e.Value, windowStart, windowEnd) {
			seen[e.Value] = struct{}{}
		}
	}
	return len(seen)
}
