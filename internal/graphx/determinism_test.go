package graphx

import (
	"math/rand"
	"testing"
)

// TestMetricsDeterministic: float-valued metrics must not depend on map
// iteration order, since analysis reports are compared byte-for-byte.
func TestMetricsDeterministic(t *testing.T) {
	build := func() *Graph {
		g := New()
		rng := rand.New(rand.NewSource(9))
		nodes := make([]string, 60)
		for i := range nodes {
			nodes[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
		}
		for i := 0; i < 150; i++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			g.AddEdge(a, b)
		}
		return g
	}
	g1, g2 := build(), build()
	if m1, m2 := g1.MeanNeighborDegree(), g2.MeanNeighborDegree(); m1 != m2 {
		t.Errorf("MeanNeighborDegree: %v vs %v", m1, m2)
	}
	mean1, sd1 := g1.DegreeStats()
	mean2, sd2 := g2.DegreeStats()
	if mean1 != mean2 || sd1 != sd2 {
		t.Errorf("DegreeStats: (%v,%v) vs (%v,%v)", mean1, sd1, mean2, sd2)
	}
	if a, b := g1.AveragePathLength(), g2.AveragePathLength(); a != b {
		t.Errorf("AveragePathLength: %v vs %v", a, b)
	}
}

func TestSortedNodesSorted(t *testing.T) {
	g := New()
	g.AddEdge("zeta", "alpha")
	g.AddEdge("mid", "alpha")
	nodes := g.sortedNodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("nodes not sorted: %v", nodes)
		}
	}
}
