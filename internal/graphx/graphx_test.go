package graphx

import (
	"math"
	"net/http"
	"net/url"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func buildPath(nodes ...string) *Graph {
	g := New()
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1])
	}
	return g
}

func TestBasicCounts(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "b") // duplicate ignored
	g.AddEdge("c", "c") // self loop ignored
	if g.NodeCount() != 3 || g.EdgeCount() != 2 {
		t.Errorf("counts = %d nodes, %d edges", g.NodeCount(), g.EdgeCount())
	}
	if g.Degree("b") != 2 || g.Degree("a") != 1 {
		t.Errorf("degrees = %v", g.Degrees())
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("c", "d")
	g.AddEdge("d", "e")
	g.AddNode("lonely", NodeDomain)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 3 { // largest first
		t.Errorf("largest component = %v", comps[0])
	}
}

func TestAveragePathLength(t *testing.T) {
	// Path a-b-c: pairs (a,b)=1 (b,c)=1 (a,c)=2 → mean 4/3.
	g := buildPath("a", "b", "c")
	if got := g.AveragePathLength(); math.Abs(got-4.0/3) > 1e-9 {
		t.Errorf("APL = %v, want 1.333", got)
	}
	if New().AveragePathLength() != 0 {
		t.Error("empty graph APL should be 0")
	}
}

func TestMeanNeighborDegreeHub(t *testing.T) {
	// Star with hub and 10 spokes: each spoke's neighbor degree is 10,
	// the hub's is 1 → mean = (10*10 + 1)/11.
	g := New()
	for i := 0; i < 10; i++ {
		g.AddEdge("hub", string(rune('a'+i)))
	}
	want := (10.0*10 + 1) / 11
	if got := g.MeanNeighborDegree(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MND = %v, want %v", got, want)
	}
}

func TestTopByDegreeAndThresholds(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddEdge("hub", string(rune('a'+i)))
	}
	g.AddEdge("a", "b")
	top := g.TopByDegree(2)
	if top[0].Node != "hub" || top[0].Degree != 5 {
		t.Errorf("top = %+v", top)
	}
	if got := g.CountDegreeAtLeast(2); got != 3 { // hub, a, b
		t.Errorf("CountDegreeAtLeast(2) = %d", got)
	}
	if got := g.TopByDegree(100); len(got) != g.NodeCount() {
		t.Errorf("TopByDegree(100) = %d entries", len(got))
	}
}

func TestDegreeStats(t *testing.T) {
	g := buildPath("a", "b", "c") // degrees 1,2,1
	mean, sd := g.DegreeStats()
	if math.Abs(mean-4.0/3) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	if sd <= 0 {
		t.Errorf("sd = %v", sd)
	}
	if m, s := New().DegreeStats(); m != 0 || s != 0 {
		t.Error("empty graph stats should be 0")
	}
}

func TestFromDataset(t *testing.T) {
	mk := func(rawURL, channel string) *proxy.Flow {
		u, _ := url.Parse(rawURL)
		return &proxy.Flow{
			Time: time.Now(), Method: "GET", URL: u, StatusCode: 200, Channel: channel,
			RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
		}
	}
	ds := &store.Dataset{Runs: []*store.RunData{{
		Name: store.RunGeneral,
		Flows: []*proxy.Flow{
			mk("http://hbbtv.ard.de/i", "Das Erste"),
			mk("http://tvping.com/t", "Das Erste"),
			mk("http://hbbtv.ard.de/i", "Tagesschau24"), // same FP, different channel
			mk("http://xiti.com/px", "Tagesschau24"),
			mk("http://unattributed.de/x", ""),
		},
	}}}
	fp := map[string]string{"Das Erste": "ard.de", "Tagesschau24": "ard.de"}
	g := FromDataset(ds, fp)

	// Nodes: 2 channels + ard.de + tvping.com + xiti.com = 5.
	if g.NodeCount() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NodeCount())
	}
	// Edges: ch1-ard, ch2-ard, ard-tvping, ard-xiti = 4.
	if g.EdgeCount() != 4 {
		t.Errorf("edges = %d, want 4", g.EdgeCount())
	}
	if g.Kind("ch:Das Erste") != NodeChannel || g.Kind("ard.de") != NodeDomain {
		t.Error("node kinds wrong")
	}
	if g.Degree("ard.de") != 4 {
		t.Errorf("ard.de degree = %d, want 4", g.Degree("ard.de"))
	}
	if len(g.Components()) != 1 {
		t.Error("ecosystem should be one component")
	}
	// Third parties hang off the first party, not the channels: the
	// channel nodes keep degree 1 (as in the paper's construction).
	if g.Degree("ch:Das Erste") != 1 {
		t.Errorf("channel degree = %d, want 1", g.Degree("ch:Das Erste"))
	}
}
