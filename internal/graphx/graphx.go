// Package graphx is the study's NetworkX substitute: an undirected graph
// with the metrics Section V-E reports for the HbbTV ecosystem graph
// (Fig. 8) — component structure, degrees, average path length, and mean
// neighbor degree ("average connectivity").
package graphx

import (
	"math"
	"sort"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// NodeKind distinguishes the two node types of the ecosystem graph.
type NodeKind int

// Node kinds.
const (
	NodeChannel NodeKind = iota + 1
	NodeDomain
)

// Graph is a simple undirected graph with typed nodes.
type Graph struct {
	adj   map[string]map[string]struct{}
	kinds map[string]NodeKind
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		adj:   make(map[string]map[string]struct{}),
		kinds: make(map[string]NodeKind),
	}
}

// AddNode inserts a node (idempotent; the first kind wins).
func (g *Graph) AddNode(id string, kind NodeKind) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[string]struct{})
		g.kinds[id] = kind
	}
}

// AddEdge inserts an undirected edge, creating missing endpoints as domain
// nodes. Self loops and duplicate edges are ignored.
func (g *Graph) AddEdge(a, b string) {
	if a == b {
		return
	}
	g.AddNode(a, NodeDomain)
	g.AddNode(b, NodeDomain)
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// Kind returns a node's kind (0 when absent).
func (g *Graph) Kind(id string) NodeKind { return g.kinds[id] }

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.adj) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Degree returns a node's degree.
func (g *Graph) Degree(id string) int { return len(g.adj[id]) }

// Degrees returns every node's degree.
func (g *Graph) Degrees() map[string]int {
	out := make(map[string]int, len(g.adj))
	for id, nb := range g.adj {
		out[id] = len(nb)
	}
	return out
}

// NodeDegree pairs a node with its degree for rankings.
type NodeDegree struct {
	Node   string
	Degree int
}

// TopByDegree returns the n highest-degree nodes, ties broken by name.
func (g *Graph) TopByDegree(n int) []NodeDegree {
	all := make([]NodeDegree, 0, len(g.adj))
	for id, nb := range g.adj {
		all = append(all, NodeDegree{Node: id, Degree: len(nb)})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Degree != all[b].Degree {
			return all[a].Degree > all[b].Degree
		}
		return all[a].Node < all[b].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// CountDegreeAtLeast counts nodes with degree >= k.
func (g *Graph) CountDegreeAtLeast(k int) int {
	n := 0
	for _, nb := range g.adj {
		if len(nb) >= k {
			n++
		}
	}
	return n
}

// Components returns the connected components, largest first.
func (g *Graph) Components() [][]string {
	seen := make(map[string]bool, len(g.adj))
	var comps [][]string
	for id := range g.adj {
		if seen[id] {
			continue
		}
		var comp []string
		queue := []string{id}
		seen[id] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for nb := range g.adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(a, b int) bool { return len(comps[a]) > len(comps[b]) })
	return comps
}

// AveragePathLength returns the mean shortest-path length over all
// connected node pairs (BFS from every node).
func (g *Graph) AveragePathLength() float64 {
	var totalDist, pairs int64
	for src := range g.adj {
		d, p := g.PathLengthFrom(src)
		totalDist += d
		pairs += p
	}
	if pairs == 0 {
		return 0
	}
	return float64(totalDist) / float64(pairs)
}

// PathLengthFrom returns the sum of shortest-path distances from src to
// every reachable node and the number of such (src, dst) pairs. The graph
// is read-only during the call, so callers may fan BFS sources out over
// goroutines; integer sums make the reduction order-independent, so the
// total — and AveragePathLength computed from it — is identical however
// the sources are partitioned.
func (g *Graph) PathLengthFrom(src string) (totalDist, pairs int64) {
	dist := g.bfs(src)
	for dst, d := range dist {
		if dst != src {
			totalDist += int64(d)
			pairs++
		}
	}
	return totalDist, pairs
}

func (g *Graph) bfs(src string) map[string]int {
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for nb := range g.adj[cur] {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Nodes returns node ids in lexical order — the stable enumeration used
// both for deterministic float summations and for partitioning BFS sources
// across workers.
func (g *Graph) Nodes() []string { return g.sortedNodes() }

// sortedNodes returns node ids in lexical order, making float summations
// deterministic regardless of map iteration order.
func (g *Graph) sortedNodes() []string {
	out := make([]string, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MeanNeighborDegree returns the mean over nodes of the average degree of
// their neighbors — the "average connectivity of a node" statistic; in a
// hub-dominated graph this far exceeds the average degree.
func (g *Graph) MeanNeighborDegree() float64 {
	var sum float64
	var n int
	for _, id := range g.sortedNodes() {
		nb := g.adj[id]
		if len(nb) == 0 {
			continue
		}
		var dsum int
		for v := range nb {
			dsum += len(g.adj[v])
		}
		sum += float64(dsum) / float64(len(nb))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DegreeStats returns the mean and (population) standard deviation of node
// degrees.
func (g *Graph) DegreeStats() (mean, sd float64) {
	n := len(g.adj)
	if n == 0 {
		return 0, 0
	}
	nodes := g.sortedNodes()
	var sum float64
	for _, id := range nodes {
		sum += float64(len(g.adj[id]))
	}
	mean = sum / float64(n)
	var ss float64
	for _, id := range nodes {
		d := float64(len(g.adj[id])) - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(n))
	return mean, sd
}

// FromDataset builds the ecosystem graph per Section V-E: each channel node
// is connected to its identified first party, and every third party
// observed on that channel is connected to the channel's first-party node.
func FromDataset(ds *store.Dataset, firstParty map[string]string) *Graph {
	thirdParties := make(map[string]map[string]struct{}) // channel -> parties
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			if f.Channel == "" {
				continue
			}
			p := etld.MustRegistrableDomain(f.Host())
			if thirdParties[f.Channel] == nil {
				thirdParties[f.Channel] = make(map[string]struct{})
			}
			thirdParties[f.Channel][p] = struct{}{}
		}
	}
	return FromChannelParties(thirdParties, firstParty)
}

// FromChannelParties builds the Section V-E graph from an already-computed
// channel -> observed-party mapping (e.g. a chunked scan over the columnar
// index). Nodes and edges are set-valued and insertion is idempotent, so
// the graph is independent of map iteration order.
func FromChannelParties(thirdParties map[string]map[string]struct{}, firstParty map[string]string) *Graph {
	g := New()
	for channel, parties := range thirdParties {
		fp := firstParty[channel]
		if fp == "" {
			continue
		}
		g.AddNode("ch:"+channel, NodeChannel)
		g.AddNode(fp, NodeDomain)
		g.AddEdge("ch:"+channel, fp)
		for p := range parties {
			if p == fp {
				continue
			}
			g.AddNode(p, NodeDomain)
			g.AddEdge(fp, p)
		}
	}
	return g
}
