// Package faults is the measurement engine's deterministic chaos layer: a
// seed-driven injector that produces the failure modes a multi-week
// broadcast campaign meets in the wild — dead app servers, flaky networks,
// tune failures, corrupted broadcast tables — without ever touching a
// random number generator at decision time.
//
// Every decision is a pure function of (Seed, host, channel, attempt): the
// injector holds no mutable state, so one instance can be shared across
// all shards of the parallel engine, and a fixed seed yields the identical
// fault schedule for every shard partition and worker count. That purity
// is what lets the chaos test suite demand a byte-identical dataset across
// Parallelism 1..N with faults enabled.
//
// Scoping by attempt is deliberate: all requests to one host during one
// visit attempt share a decision (a dead server is dead for the whole
// attempt — that is also what makes an HTTP 5xx fault a burst), while the
// next retry attempt rolls fresh, so bounded retries can recover from
// transient faults.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Kind identifies one injectable failure mode.
type Kind uint8

// The fault taxonomy. DNS through Reset are request-level faults applied
// by the virtual transport; TuneFail and AITCorrupt are broadcast-level
// faults applied by the TV.
const (
	KindNone Kind = iota
	// KindDNS fails name resolution for the host (virtual NXDOMAIN).
	KindDNS
	// KindConnRefused refuses the connection outright.
	KindConnRefused
	// KindTimeout burns a short stretch of virtual time, then times out.
	KindTimeout
	// KindHang burns a long stretch of virtual time before timing out —
	// the fault a per-visit deadline exists to bound.
	KindHang
	// KindHTTP5xx answers every request of the attempt with a 5xx burst.
	KindHTTP5xx
	// KindTruncate silently cuts the response body short.
	KindTruncate
	// KindReset cuts the response body short with a mid-read error
	// (connection reset while streaming).
	KindReset
	// KindTuneFail makes the tuner fail to lock onto the service.
	KindTuneFail
	// KindAITCorrupt flips bits in the broadcast AIT section so that
	// decoding fails (the CRC-32 check catches the damage).
	KindAITCorrupt

	kindCount // sentinel for validation
)

var kindNames = [...]string{
	KindNone: "none", KindDNS: "dns", KindConnRefused: "conn-refused",
	KindTimeout: "timeout", KindHang: "hang", KindHTTP5xx: "http-5xx",
	KindTruncate: "truncate", KindReset: "reset",
	KindTuneFail: "tune-fail", KindAITCorrupt: "ait-corrupt",
}

// String returns the kind's stable name (used in telemetry event details).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Error sentinels. Every injected transport error wraps ErrInjected, so
// callers can distinguish chaos from genuine bugs with errors.Is.
var (
	ErrInjected    = errors.New("faults: injected fault")
	ErrDNS         = fmt.Errorf("no such host: %w", ErrInjected)
	ErrConnRefused = fmt.Errorf("connection refused: %w", ErrInjected)
	ErrTimeout     = fmt.Errorf("timeout awaiting response: %w", ErrInjected)
	ErrReset       = fmt.Errorf("connection reset by peer: %w", ErrInjected)
	ErrTuneFail    = fmt.Errorf("no signal lock: %w", ErrInjected)
)

// Fault is one resolved fault decision with its deterministic parameters.
type Fault struct {
	Kind Kind
	// Delay is the virtual time consumed before the fault manifests
	// (timeouts and hangs).
	Delay time.Duration
	// Status is the response status for KindHTTP5xx.
	Status int
	// KeepPermille is the fraction (in 1/1000) of the response body kept
	// by KindTruncate / KindReset.
	KeepPermille int
}

// Plan overrides the fault behaviour for one host or channel.
type Plan struct {
	// Rate is the per-decision fault probability in [0, 1].
	Rate float64
	// Kinds restricts which fault kinds the plan injects (nil = every
	// kind applicable at the decision point).
	Kinds []Kind
}

// Config configures an Injector.
type Config struct {
	// Seed drives the entire fault schedule. Two injectors with equal
	// configs produce identical decisions everywhere.
	Seed int64
	// Rate is the global per-decision fault probability in [0, 1]. Each
	// decision point (one host per visit attempt, one tune, one AIT read)
	// rolls independently. Zero disables injection entirely.
	Rate float64
	// Kinds restricts the injectable kinds globally (nil = all).
	Kinds []Kind
	// Hosts overrides the plan per host; a key of the form "*.domain"
	// matches any subdomain of domain. Host plans beat channel plans.
	Hosts map[string]Plan
	// Channels overrides the plan per channel name (tune/AIT decisions,
	// and HTTP decisions for hosts without their own plan).
	Channels map[string]Plan
}

// Validate checks rates and kinds.
func (c Config) Validate() error {
	check := func(where string, p Plan) error {
		if p.Rate < 0 || p.Rate > 1 {
			return fmt.Errorf("faults: %s rate must be in [0, 1], got %v", where, p.Rate)
		}
		for _, k := range p.Kinds {
			if k == KindNone || k >= kindCount {
				return fmt.Errorf("faults: %s names unknown fault kind %d", where, uint8(k))
			}
		}
		return nil
	}
	if err := check("global", Plan{Rate: c.Rate, Kinds: c.Kinds}); err != nil {
		return err
	}
	for h, p := range c.Hosts {
		if err := check("host "+h, p); err != nil {
			return err
		}
	}
	for ch, p := range c.Channels {
		if err := check("channel "+ch, p); err != nil {
			return err
		}
	}
	return nil
}

// Injector makes deterministic fault decisions. It is immutable after New
// and safe for concurrent use by any number of shards; all methods are
// no-ops on a nil receiver, so disabled injection threads through as nil.
type Injector struct {
	seed     int64
	global   Plan
	hosts    map[string]Plan
	wild     map[string]Plan // "*.example.de" stored as "example.de"
	channels map[string]Plan
}

// New builds an injector from a validated config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		seed:     cfg.Seed,
		global:   Plan{Rate: cfg.Rate, Kinds: append([]Kind(nil), cfg.Kinds...)},
		channels: make(map[string]Plan, len(cfg.Channels)),
		hosts:    make(map[string]Plan),
		wild:     make(map[string]Plan),
	}
	for h, p := range cfg.Hosts {
		h = strings.ToLower(strings.TrimSuffix(h, "."))
		if rest, ok := strings.CutPrefix(h, "*."); ok {
			in.wild[rest] = p
		} else {
			in.hosts[h] = p
		}
	}
	for ch, p := range cfg.Channels {
		in.channels[ch] = p
	}
	return in, nil
}

// Enabled reports whether the injector can inject anything at all.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	if in.global.Rate > 0 {
		return true
	}
	for _, p := range in.hosts {
		if p.Rate > 0 {
			return true
		}
	}
	for _, p := range in.wild {
		if p.Rate > 0 {
			return true
		}
	}
	for _, p := range in.channels {
		if p.Rate > 0 {
			return true
		}
	}
	return false
}

// httpKinds are the kinds applicable at the transport decision point.
var httpKinds = []Kind{
	KindDNS, KindConnRefused, KindTimeout, KindHang,
	KindHTTP5xx, KindTruncate, KindReset,
}

// HTTP decides the fault for requests to host during one visit attempt.
// All requests sharing (host, channel, attempt) share the decision.
func (in *Injector) HTTP(host, channel string, attempt int) Fault {
	if in == nil {
		return Fault{}
	}
	host = canonicalHost(host)
	plan, ok := in.hostPlan(host)
	if !ok {
		plan, ok = in.channels[channel]
		if !ok {
			plan = in.global
		}
	}
	return in.decide("http", host, channel, attempt, plan, httpKinds)
}

// Tune decides the broadcast tune fault for one visit attempt.
func (in *Injector) Tune(channel string, attempt int) Fault {
	return in.broadcast("tune", channel, attempt, KindTuneFail)
}

// AIT decides the AIT-corruption fault for one visit attempt.
func (in *Injector) AIT(channel string, attempt int) Fault {
	return in.broadcast("ait", channel, attempt, KindAITCorrupt)
}

func (in *Injector) broadcast(salt, channel string, attempt int, kind Kind) Fault {
	if in == nil {
		return Fault{}
	}
	plan, ok := in.channels[channel]
	if !ok {
		plan = in.global
	}
	return in.decide(salt, "", channel, attempt, plan, []Kind{kind})
}

// decide rolls the deterministic dice for one decision point.
func (in *Injector) decide(salt, host, channel string, attempt int, plan Plan, applicable []Kind) Fault {
	kinds := applicable
	if len(plan.Kinds) > 0 {
		kinds = kinds[:0:0]
		for _, k := range applicable {
			for _, want := range plan.Kinds {
				if k == want {
					kinds = append(kinds, k)
					break
				}
			}
		}
	}
	if plan.Rate <= 0 || len(kinds) == 0 {
		return Fault{}
	}
	h := derive(in.seed, salt, host, channel, attempt)
	if uniform(h) >= plan.Rate {
		return Fault{}
	}
	// Independent bit streams for kind and parameters keep the choice of
	// kind uncorrelated with the injection decision itself.
	hk := splitmix(h + 0x9e3779b97f4a7c15)
	f := Fault{Kind: kinds[hk%uint64(len(kinds))]}
	hp := splitmix(hk + 0x9e3779b97f4a7c15)
	switch f.Kind {
	case KindTimeout:
		f.Delay = time.Duration(5+hp%26) * time.Second // 5-30 s
	case KindHang:
		f.Delay = time.Duration(120+hp%481) * time.Second // 2-10 min
	case KindHTTP5xx:
		f.Status = []int{500, 502, 503}[hp%3]
	case KindTruncate, KindReset:
		f.KeepPermille = int(hp % 750) // keep 0-75% of the body
	}
	return f
}

func (in *Injector) hostPlan(host string) (Plan, bool) {
	if p, ok := in.hosts[host]; ok {
		return p, true
	}
	for {
		i := strings.IndexByte(host, '.')
		if i < 0 {
			return Plan{}, false
		}
		host = host[i+1:]
		if p, ok := in.wild[host]; ok {
			return p, true
		}
	}
}

// canonicalHost lower-cases the host and strips a trailing dot and port,
// mirroring hostnet's lookup normalization so fault plans key the same way
// handlers do.
func canonicalHost(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i+1:], "]") {
		if _, rest := host[:i], host[i+1:]; allDigits(rest) {
			host = host[:i]
		}
	}
	return host
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Corrupt returns a damaged copy of section keyed to the injector's seed
// and the decision scope. Nil-safe: without an injector the copy is intact.
func (in *Injector) Corrupt(section []byte, channel string, attempt int) []byte {
	if in == nil {
		return append([]byte(nil), section...)
	}
	return CorruptSection(section, in.seed, channel, attempt)
}

// CorruptSection returns a damaged copy of a broadcast section: one byte
// chosen by the decision hash is flipped, which the section's CRC-32 is
// guaranteed to catch downstream. The input is never mutated.
func CorruptSection(section []byte, seed int64, channel string, attempt int) []byte {
	out := append([]byte(nil), section...)
	if len(out) == 0 {
		return out
	}
	h := derive(seed, "corrupt", "", channel, attempt)
	out[h%uint64(len(out))] ^= byte(1 << (splitmix(h) % 8))
	return out
}

// Jitter returns a deterministic duration in [0, max) derived from
// (seed, channel, attempt) — the retry layer's replacement for rand-based
// backoff jitter, chosen so a shard's schedule never depends on how many
// random draws earlier channels consumed.
func Jitter(seed int64, channel string, attempt int, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(derive(seed, "jitter", "", channel, attempt) % uint64(max))
}

// derive hashes one decision scope into 64 well-mixed bits: FNV-1a over
// the scope tuple, finalized with splitmix64 for avalanche.
func derive(seed int64, salt, host, channel string, attempt int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xFF // separator: ("ab","c") must differ from ("a","bc")
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(seed) >> (8 * i) & 0xFF
		h *= prime
	}
	mix(salt)
	mix(host)
	mix(channel)
	h ^= uint64(attempt)
	h *= prime
	return splitmix(h)
}

// splitmix is the splitmix64 finalizer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform maps 64 hash bits to [0, 1).
func uniform(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}
