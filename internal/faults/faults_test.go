package faults

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if f := in.HTTP("a.example.de", "ch", 0); f.Kind != KindNone {
		t.Fatalf("nil HTTP fault = %v", f.Kind)
	}
	if f := in.Tune("ch", 0); f.Kind != KindNone {
		t.Fatalf("nil Tune fault = %v", f.Kind)
	}
	if f := in.AIT("ch", 0); f.Kind != KindNone {
		t.Fatalf("nil AIT fault = %v", f.Kind)
	}
	section := []byte{1, 2, 3}
	if got := in.Corrupt(section, "ch", 0); !bytes.Equal(got, section) {
		t.Fatalf("nil Corrupt changed the section: %v", got)
	}
}

func TestZeroRateNeverInjects(t *testing.T) {
	in := mustNew(t, Config{Seed: 1})
	if in.Enabled() {
		t.Fatal("zero-rate injector reports Enabled")
	}
	for attempt := 0; attempt < 50; attempt++ {
		if f := in.HTTP("cdn.example.de", "Das Erste", attempt); f.Kind != KindNone {
			t.Fatalf("attempt %d: injected %v at rate 0", attempt, f.Kind)
		}
	}
}

// The headline property: decisions are pure functions of
// (Seed, host, channel, attempt) — two injectors with the same config
// agree everywhere, regardless of call order.
func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.5}
	a, b := mustNew(t, cfg), mustNew(t, cfg)
	hosts := []string{"app.ard.de", "tracker.example.com", "cdn.example.com"}
	channels := []string{"Das Erste", "ZDF", "arte"}
	// Drive b in reverse order to prove statelessness.
	type decision struct{ f Fault }
	var forward []decision
	for _, h := range hosts {
		for _, ch := range channels {
			for attempt := 0; attempt < 5; attempt++ {
				forward = append(forward, decision{a.HTTP(h, ch, attempt)})
			}
		}
	}
	i := len(forward)
	for hi := len(hosts) - 1; hi >= 0; hi-- {
		for ci := len(channels) - 1; ci >= 0; ci-- {
			for attempt := 4; attempt >= 0; attempt-- {
				i--
				idx := (hi*len(channels)+ci)*5 + attempt
				if got := b.HTTP(hosts[hi], channels[ci], attempt); got != forward[idx].f {
					t.Fatalf("decision for (%s,%s,%d) differs: %v vs %v",
						hosts[hi], channels[ci], attempt, got, forward[idx].f)
				}
			}
		}
	}
}

func TestDifferentSeedsDisagree(t *testing.T) {
	a := mustNew(t, Config{Seed: 1, Rate: 0.5})
	b := mustNew(t, Config{Seed: 2, Rate: 0.5})
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		ch := string(rune('A' + i%26))
		if a.HTTP("x.example.de", ch, i) == b.HTTP("x.example.de", ch, i) {
			same++
		}
	}
	if same == n {
		t.Fatal("two different seeds produced identical schedules")
	}
}

func TestRateIsApproximatelyHonored(t *testing.T) {
	in := mustNew(t, Config{Seed: 7, Rate: 0.25})
	injected := 0
	const n = 4000
	for i := 0; i < n; i++ {
		host := string(rune('a'+i%26)) + ".example.de"
		if f := in.HTTP(host, "ch", i); f.Kind != KindNone {
			injected++
		}
	}
	got := float64(injected) / n
	if math.Abs(got-0.25) > 0.05 {
		t.Fatalf("empirical rate %.3f, want ~0.25", got)
	}
}

func TestAttemptScopingRollsFresh(t *testing.T) {
	// With a high rate, successive attempts must not all share one fate:
	// at rate 0.5 across 64 attempts, seeing only one outcome would mean
	// the attempt is not part of the key.
	in := mustNew(t, Config{Seed: 3, Rate: 0.5})
	saw := map[bool]bool{}
	for attempt := 0; attempt < 64; attempt++ {
		f := in.HTTP("app.example.de", "ch", attempt)
		saw[f.Kind != KindNone] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatalf("64 attempts saw only injected=%v", saw[true])
	}
}

func TestSameAttemptSharesDecisionAcrossRequests(t *testing.T) {
	in := mustNew(t, Config{Seed: 11, Rate: 0.5})
	f1 := in.HTTP("app.example.de", "ch", 2)
	f2 := in.HTTP("app.example.de", "ch", 2)
	if f1 != f2 {
		t.Fatalf("same (host,channel,attempt) gave %v then %v", f1, f2)
	}
}

func TestHostPlanOverridesAndWildcards(t *testing.T) {
	in := mustNew(t, Config{
		Seed: 5,
		Rate: 0, // global off
		Hosts: map[string]Plan{
			"dead.example.de": {Rate: 1, Kinds: []Kind{KindConnRefused}},
			"*.flaky.de":      {Rate: 1, Kinds: []Kind{KindHTTP5xx}},
		},
	})
	if !in.Enabled() {
		t.Fatal("injector with host plans reports disabled")
	}
	if f := in.HTTP("dead.example.de", "ch", 0); f.Kind != KindConnRefused {
		t.Fatalf("exact host plan: got %v, want conn-refused", f.Kind)
	}
	if f := in.HTTP("a.b.flaky.de", "ch", 0); f.Kind != KindHTTP5xx {
		t.Fatalf("wildcard host plan: got %v, want http-5xx", f.Kind)
	}
	if st := in.HTTP("a.flaky.de", "ch", 0).Status; st != 500 && st != 502 && st != 503 {
		t.Fatalf("5xx fault status = %d", st)
	}
	if f := in.HTTP("fine.example.de", "ch", 0); f.Kind != KindNone {
		t.Fatalf("unplanned host injected %v with global rate 0", f.Kind)
	}
	// Port and case normalization.
	if f := in.HTTP("DEAD.example.de:8080", "ch", 0); f.Kind != KindConnRefused {
		t.Fatalf("host normalization: got %v, want conn-refused", f.Kind)
	}
}

func TestChannelPlanCoversBroadcastAndHTTP(t *testing.T) {
	in := mustNew(t, Config{
		Seed: 9,
		Channels: map[string]Plan{
			"Cursed TV": {Rate: 1, Kinds: []Kind{KindTuneFail, KindAITCorrupt, KindDNS}},
		},
	})
	if f := in.Tune("Cursed TV", 0); f.Kind != KindTuneFail {
		t.Fatalf("Tune = %v, want tune-fail", f.Kind)
	}
	if f := in.AIT("Cursed TV", 0); f.Kind != KindAITCorrupt {
		t.Fatalf("AIT = %v, want ait-corrupt", f.Kind)
	}
	// The channel plan also applies to HTTP for hosts without a host plan;
	// only its HTTP-applicable kinds (DNS here) can fire there.
	if f := in.HTTP("app.example.de", "Cursed TV", 0); f.Kind != KindDNS {
		t.Fatalf("HTTP under channel plan = %v, want dns", f.Kind)
	}
	if f := in.Tune("Fine TV", 0); f.Kind != KindNone {
		t.Fatalf("other channel tuned into a fault: %v", f.Kind)
	}
}

func TestBroadcastKindsNeverLeakIntoHTTP(t *testing.T) {
	in := mustNew(t, Config{Seed: 13, Rate: 1})
	for i := 0; i < 200; i++ {
		f := in.HTTP("h.example.de", "ch", i)
		if f.Kind == KindTuneFail || f.Kind == KindAITCorrupt {
			t.Fatalf("HTTP decision produced broadcast kind %v", f.Kind)
		}
		if f.Kind == KindNone {
			t.Fatalf("rate 1 skipped injection at attempt %d", i)
		}
	}
	for i := 0; i < 50; i++ {
		if f := in.Tune("ch", i); f.Kind != KindTuneFail {
			t.Fatalf("Tune decision = %v, want tune-fail", f.Kind)
		}
	}
}

func TestFaultParameterRanges(t *testing.T) {
	in := mustNew(t, Config{Seed: 17, Rate: 1})
	for i := 0; i < 500; i++ {
		f := in.HTTP("h.example.de", "ch", i)
		switch f.Kind {
		case KindTimeout:
			if f.Delay < 5*time.Second || f.Delay > 30*time.Second {
				t.Fatalf("timeout delay %v out of range", f.Delay)
			}
		case KindHang:
			if f.Delay < 2*time.Minute || f.Delay > 10*time.Minute {
				t.Fatalf("hang delay %v out of range", f.Delay)
			}
		case KindHTTP5xx:
			if f.Status != 500 && f.Status != 502 && f.Status != 503 {
				t.Fatalf("5xx status %d", f.Status)
			}
		case KindTruncate, KindReset:
			if f.KeepPermille < 0 || f.KeepPermille >= 750 {
				t.Fatalf("keep permille %d out of range", f.KeepPermille)
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Rate: -0.1},
		{Rate: 1.5},
		{Hosts: map[string]Plan{"h.de": {Rate: 2}}},
		{Channels: map[string]Plan{"ch": {Rate: 0.5, Kinds: []Kind{Kind(200)}}}},
		{Kinds: []Kind{KindNone}},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
	if err := (Config{Seed: 1, Rate: 0.3, Kinds: []Kind{KindDNS, KindReset}}).Validate(); err != nil {
		t.Errorf("Validate rejected a good config: %v", err)
	}
}

func TestErrorSentinelsWrapErrInjected(t *testing.T) {
	for _, err := range []error{ErrDNS, ErrConnRefused, ErrTimeout, ErrReset, ErrTuneFail} {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("%v does not wrap ErrInjected", err)
		}
	}
}

func TestCorruptSection(t *testing.T) {
	section := bytes.Repeat([]byte{0xAB}, 64)
	orig := append([]byte(nil), section...)
	got := CorruptSection(section, 21, "ch", 0)
	if !bytes.Equal(section, orig) {
		t.Fatal("CorruptSection mutated its input")
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("CorruptSection changed %d bytes, want exactly 1", diff)
	}
	again := CorruptSection(section, 21, "ch", 0)
	if !bytes.Equal(got, again) {
		t.Fatal("CorruptSection is not deterministic")
	}
	other := CorruptSection(section, 21, "ch", 1)
	if bytes.Equal(got, other) {
		// Different attempts may rarely flip the same bit; require at
		// least the possibility of divergence over a few attempts.
		same := true
		for a := 2; a < 8 && same; a++ {
			same = bytes.Equal(got, CorruptSection(section, 21, "ch", a))
		}
		if same {
			t.Fatal("CorruptSection ignores the attempt")
		}
	}
	if out := CorruptSection(nil, 21, "ch", 0); len(out) != 0 {
		t.Fatalf("CorruptSection(nil) = %v", out)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	const max = 10 * time.Second
	seen := map[time.Duration]bool{}
	for attempt := 0; attempt < 32; attempt++ {
		j := Jitter(99, "ch", attempt, max)
		if j < 0 || j >= max {
			t.Fatalf("jitter %v out of [0, %v)", j, max)
		}
		if j != Jitter(99, "ch", attempt, max) {
			t.Fatal("jitter is not deterministic")
		}
		seen[j] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter is constant across attempts")
	}
	if Jitter(99, "ch", 0, 0) != 0 {
		t.Fatal("jitter with max 0 must be 0")
	}
}

func TestKindString(t *testing.T) {
	if KindHTTP5xx.String() != "http-5xx" || KindNone.String() != "none" {
		t.Fatalf("Kind.String: %q %q", KindHTTP5xx.String(), KindNone.String())
	}
	if Kind(250).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
