// Package intern provides dense string-intern tables. It is the shared
// foundation of two hot paths: the columnar analysis index (internal/store)
// stores every string-valued flow field once and keeps int32 IDs per row,
// and the recording proxy (internal/proxy) deduplicates host names and
// header strings at record time so half a million flows do not allocate
// half a million copies of "image/gif".
//
// Determinism contract: IDs are assigned in first-occurrence order of the
// insertion sequence, and merging chunk-local tables (chunks taken in
// order) reproduces exactly the table a serial scan of the concatenated
// sequence would build. Chunked parallel interning is therefore
// indistinguishable from serial interning — the property the store
// package's FuzzInternRoundTrip exercises.
package intern

// Strings is a dense string-intern table: each distinct string gets the
// next int32 ID in first-insertion order. The zero value is not usable;
// call NewStrings.
type Strings struct {
	ids  map[string]int32
	strs []string
}

// NewStrings returns an empty intern table with capacity for n strings.
func NewStrings(n int) *Strings {
	return &Strings{ids: make(map[string]int32, n), strs: make([]string, 0, n)}
}

// Intern returns the ID of s, assigning the next dense ID on first sight.
func (t *Strings) Intern(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := int32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// InternBytes is Intern for a byte-slice key. The lookup does not allocate;
// the string copy is made only on first sight.
func (t *Strings) InternBytes(b []byte) int32 {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	s := string(b)
	id := int32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Canon returns the canonical (first-interned) instance of s, interning it
// on first sight. Callers use it to share one backing copy of a string that
// is re-created per record (header names, hosts, content types).
func (t *Strings) Canon(s string) string {
	return t.strs[t.Intern(s)]
}

// Lookup returns the ID of s without interning it.
func (t *Strings) Lookup(s string) (int32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// String resolves an ID back to its string. IDs outside [0, Len) return "".
func (t *Strings) String(id int32) string {
	if id < 0 || int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of distinct interned strings.
func (t *Strings) Len() int { return len(t.strs) }

// All returns the interned strings in ID order. The slice is the table's
// backing storage — treat it as read-only.
func (t *Strings) All() []string { return t.strs }

// MergeStrings stitches chunk-local tables into one global table and
// returns, per chunk, the local-ID -> global-ID remap. Locals are merged in
// slice order with their internal insertion order preserved, which makes
// the global ID assignment identical to serially interning the chunks'
// underlying sequences back to back: a string's global ID is determined by
// its first occurrence, wherever that fell.
func MergeStrings(locals []*Strings) (*Strings, [][]int32) {
	total := 0
	for _, l := range locals {
		total += l.Len()
	}
	global := NewStrings(total)
	return global, global.Absorb(locals)
}

// Absorb merges chunk-local tables into t (which may already hold seeded
// entries — e.g. the channel table pre-populated from dataset metadata)
// and returns the per-chunk local-ID -> global-ID remaps. The determinism
// argument of MergeStrings applies unchanged: seeded entries keep their
// IDs, and unseen strings get dense IDs in chunk-order first occurrence.
func (t *Strings) Absorb(locals []*Strings) [][]int32 {
	remaps := make([][]int32, len(locals))
	for ci, l := range locals {
		remap := make([]int32, l.Len())
		for localID, s := range l.strs {
			remap[localID] = t.Intern(s)
		}
		remaps[ci] = remap
	}
	return remaps
}
