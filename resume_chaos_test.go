package hbbtvlab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file is the process-level half of the crash-safety suite: real
// hbbtv-measure children are SIGKILL'd mid-campaign — no deferred
// cleanup, no graceful unwind, exactly what the OOM killer or a power
// cut delivers — and the resumed campaign must produce a snapshot whose
// digest is byte-identical to an uninterrupted run's. The in-process
// twin (resume_test.go) covers the same contract at library level via
// journal truncation; `make resume` runs both under -race.

// chaosArgs is the chaos experiment of chaos_test.go expressed as
// hbbtv-measure flags (the CLI's own retry defaults apply).
func chaosArgs(scale string) []string {
	return []string{"-seed", "321", "-scale", scale,
		"-fault-rate", "0.25", "-fault-seed", "11", "-retries", "2"}
}

// snapshotDigest loads a dataset file written by -snapshot/-save and
// returns its digest.
func snapshotDigest(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := store.Load(f)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	return digestOrFatal(t, ds)
}

// runToolExpectError runs a built binary expecting a non-zero exit and
// returns its combined output.
func runToolExpectError(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s: expected failure, exited 0\n%s",
			filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

// startMeasure launches hbbtv-measure and returns the command, its
// combined output buffer, and a channel that receives Wait's result.
func startMeasure(t *testing.T, bin string, args ...string) (*exec.Cmd, *bytes.Buffer, chan error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	return cmd, &out, done
}

// killAtSize SIGKILLs cmd once the journal file reaches threshold bytes.
// Returns true if the kill landed, false if the campaign finished first
// (a valid outcome: the complete journal still resumes as a no-op).
func killAtSize(t *testing.T, cmd *exec.Cmd, done chan error, journal string, threshold int64) bool {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("child exited non-zero before the kill: %v", err)
			}
			return false
		default:
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("journal %s never reached %d bytes", journal, threshold)
		}
		if fi, err := os.Stat(journal); err == nil && fi.Size() >= threshold {
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			<-done // reaps the SIGKILL'd child
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosProcessKillResumeParity is the tentpole's end-to-end proof:
// for every worker count, a collector SIGKILL'd when its write-ahead
// journal crosses a seed-derived size threshold is resumed by a fresh
// process, and the resumed snapshot's digest equals the uninterrupted
// run's. One worker count additionally takes a second kill during the
// resume itself.
func TestChaosProcessKillResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process chaos suite skipped in -short")
	}
	dir := t.TempDir()
	measure := buildTool(t, dir, "hbbtv-measure")
	base := chaosArgs("0.02")

	ref := filepath.Join(dir, "ref.snap")
	runTool(t, measure, append(base, "-j", "2", "-shards", "4", "-snapshot", ref)...)
	refDigest := snapshotDigest(t, ref)

	// One complete checkpointed run pins the journal's final size (the
	// campaign is deterministic, so every run writes the same bytes) and
	// proves journaling alone does not perturb the dataset.
	full := filepath.Join(dir, "full.journal")
	fullSnap := filepath.Join(dir, "full.snap")
	runTool(t, measure, append(base, "-j", "2", "-shards", "4",
		"-checkpoint", full, "-snapshot", fullSnap)...)
	if got := snapshotDigest(t, fullSnap); got != refDigest {
		t.Fatalf("checkpointed run digest %s != reference %s", got, refDigest)
	}
	fi, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	const killSeed = int64(99)
	points := killPoints(killSeed, fi.Size(), 3)
	t.Logf("kill seed %d, full journal %d bytes, thresholds %v", killSeed, fi.Size(), points)

	for i, jobs := range []string{"1", "2", "4", "8"} {
		t.Run("j="+jobs, func(t *testing.T) {
			journal := filepath.Join(dir, "kill-j"+jobs+".journal")
			args := append(base, "-j", jobs, "-shards", "4", "-checkpoint", journal)
			cmd, out, done := startMeasure(t, measure, args...)
			threshold := points[i%len(points)]
			if killAtSize(t, cmd, done, journal, threshold) {
				t.Logf("SIGKILL'd at >= %d journal bytes", threshold)
			} else {
				t.Logf("campaign finished before the %d-byte threshold; resuming a complete journal", threshold)
			}
			_ = out

			// A second kill during the resume for one worker count: the
			// journal must absorb repeated crashes, not just one.
			if jobs == "2" {
				cmd, _, done := startMeasure(t, measure, append(args, "-resume")...)
				if killAtSize(t, cmd, done, journal, points[(i+1)%len(points)]) {
					t.Logf("second SIGKILL at >= %d journal bytes", points[(i+1)%len(points)])
				}
			}

			snap := filepath.Join(dir, "resume-j"+jobs+".snap")
			runTool(t, measure, append(args, "-resume", "-snapshot", snap)...)
			if got := snapshotDigest(t, snap); got != refDigest {
				t.Errorf("resumed digest differs from uninterrupted run (j=%s, kill seed %d, threshold %d):\n  %s\n  %s",
					jobs, killSeed, threshold, got, refDigest)
			}
		})
	}
}

// TestChaosFleetKillResumeMerge: every collector of a 4-shard fleet
// campaign is SIGKILL'd mid-run and resumed, and hbbtv-merge must verify
// the recombined shards against the uninterrupted single-process run —
// crash recovery composes with the fleet topology.
func TestChaosFleetKillResumeMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process chaos suite skipped in -short")
	}
	dir := t.TempDir()
	measure := buildTool(t, dir, "hbbtv-measure")
	merge := buildTool(t, dir, "hbbtv-merge")
	base := chaosArgs("0.02")
	const shards = 4

	single := filepath.Join(dir, "single.snap")
	runTool(t, measure, append(base, "-j", "2", "-shards", fmt.Sprint(shards), "-snapshot", single)...)

	// Learn a typical shard journal size from one complete collector run,
	// then kill every shard (shard 0 included, on a fresh journal) at
	// seed-derived fractions of it.
	probe := filepath.Join(dir, "probe.journal")
	runTool(t, measure, append(base, "-shard", "0/4", "-checkpoint", probe,
		"-snapshot", filepath.Join(dir, "probe.snap"))...)
	fi, err := os.Stat(probe)
	if err != nil {
		t.Fatal(err)
	}
	points := killPoints(77, fi.Size(), shards)
	t.Logf("probe shard journal %d bytes, kill thresholds %v", fi.Size(), points)

	shardFiles := make([]string, shards)
	for i := 0; i < shards; i++ {
		spec := fmt.Sprintf("%d/%d", i, shards)
		journal := filepath.Join(dir, fmt.Sprintf("shard%d.journal", i))
		shardFiles[i] = filepath.Join(dir, fmt.Sprintf("shard%d.snap", i))
		args := append(base, "-shard", spec, "-checkpoint", journal)

		cmd, _, done := startMeasure(t, measure, args...)
		if killAtSize(t, cmd, done, journal, points[i]) {
			t.Logf("shard %s SIGKILL'd at >= %d journal bytes", spec, points[i])
		}
		runTool(t, measure, append(args, "-resume", "-snapshot", shardFiles[i])...)
	}

	out := runTool(t, merge, append([]string{"-verify", single}, shardFiles...)...)
	if !strings.Contains(out, "verified: digest matches") {
		t.Errorf("merge of kill-resumed shards failed verification:\n%s", out)
	}
}

// TestChaosResumeMismatchRejectedCLI: a journal resumed under a
// different experiment definition must be rejected with the differing
// field named — at the CLI boundary, not just in the library.
func TestChaosResumeMismatchRejectedCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process chaos suite skipped in -short")
	}
	dir := t.TempDir()
	measure := buildTool(t, dir, "hbbtv-measure")
	journal := filepath.Join(dir, "full.journal")
	runTool(t, measure, append(chaosArgs("0.02"), "-j", "2", "-shards", "4", "-checkpoint", journal)...)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"seed", append(
			[]string{"-seed", "999", "-scale", "0.02", "-fault-rate", "0.25", "-fault-seed", "11", "-retries", "2"},
			"-j", "2", "-shards", "4"), "seed"},
		{"fault config", append(chaosArgs("0.02"), "-fault-rate", "0.5", "-j", "2", "-shards", "4"), "fault config"},
		{"retry policy", append(chaosArgs("0.02"), "-retries", "5", "-j", "2", "-shards", "4"), "retry policy"},
		{"shard count", append(chaosArgs("0.02"), "-j", "2", "-shards", "2"), "shard count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := runToolExpectError(t, measure, append(tc.args, "-checkpoint", journal, "-resume")...)
			if !strings.Contains(out, tc.want) {
				t.Errorf("mismatched resume output does not name %q:\n%s", tc.want, out)
			}
		})
	}

	// A different worker count is NOT a mismatch: -j never changes the
	// bytes, so the journal resumes (here: replays to completion) at -j 8.
	snap := filepath.Join(dir, "j8.snap")
	runTool(t, measure, append(chaosArgs("0.02"), "-j", "8", "-shards", "4",
		"-checkpoint", journal, "-resume", "-snapshot", snap)...)
	ref := filepath.Join(dir, "ref.snap")
	runTool(t, measure, append(chaosArgs("0.02"), "-j", "2", "-shards", "4", "-snapshot", ref)...)
	if got, want := snapshotDigest(t, snap), snapshotDigest(t, ref); got != want {
		t.Errorf("journal replayed at -j 8 produced digest %s, want %s", got, want)
	}
}

// TestChaosInterruptGracefulExit: SIGINT must stop the campaign at the
// next channel boundary, exit with the distinct status 3, leave a
// resumable journal, and flush + close the -telemetry-json sink — the
// satellite contract that no exit path leaks a torn telemetry stream.
func TestChaosInterruptGracefulExit(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process chaos suite skipped in -short")
	}
	dir := t.TempDir()
	measure := buildTool(t, dir, "hbbtv-measure")
	// A bigger world (~3s wall clock at -j 1) gives the signal an
	// arbitrarily large landing window: it is sent after the FIRST cell
	// commits, with ~19 cells still to go.
	base := chaosArgs("0.35")
	journal := filepath.Join(dir, "int.journal")
	telemetryJSON := filepath.Join(dir, "telemetry.ndjson")

	args := append(base, "-j", "1", "-shards", "4",
		"-checkpoint", journal, "-telemetry", "-telemetry-json", telemetryJSON)
	cmd, out, done := startMeasure(t, measure, args...)

	// Wait for the first journaled cell, then deliver a single SIGINT.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 64 {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("journal never received a cell")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := <-done
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("SIGINT'd campaign exited cleanly (signal landed after completion?): %v\n%s", err, out)
	}
	if exit.ExitCode() != 3 {
		t.Fatalf("interrupted campaign exited %d, want the distinct status 3\n%s", exit.ExitCode(), out)
	}
	if !strings.Contains(out.String(), "-resume") {
		t.Errorf("interrupt message does not point at -resume:\n%s", out)
	}

	// The LineSink must have been flushed and closed on the signal path:
	// every line of the stream parses, including the last one — a torn
	// final line is exactly what a leaked bufio.Writer leaves behind.
	raw, err := os.ReadFile(telemetryJSON)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("interrupted campaign left an empty -telemetry-json stream")
	}
	if raw[len(raw)-1] != '\n' {
		t.Errorf("-telemetry-json stream does not end in a newline: the sink was not flushed")
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	for i, line := range lines {
		var snap map[string]any
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("-telemetry-json line %d of %d is torn or invalid: %v\n%q", i+1, len(lines), err, line)
		}
	}

	// The journal the graceful exit left behind resumes to digest parity.
	snap := filepath.Join(dir, "resumed.snap")
	runTool(t, measure, append(base, "-j", "1", "-shards", "4",
		"-checkpoint", journal, "-resume", "-snapshot", snap)...)
	ref := filepath.Join(dir, "ref.snap")
	runTool(t, measure, append(base, "-j", "2", "-shards", "4", "-snapshot", ref)...)
	if got, want := snapshotDigest(t, snap), snapshotDigest(t, ref); got != want {
		t.Errorf("resume after SIGINT produced digest %s, want %s", got, want)
	}
}
