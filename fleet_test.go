package hbbtvlab

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// The differential fleet suite: a campaign split across shard datasets —
// in-process or across real child processes — must merge to a dataset
// whose digest is byte-identical to the single-process sharded run of the
// same study. This is the property that lets a fleet of independent
// collectors stand in for one machine.

// fleetOptions is the suite's base experiment: small world, sharded
// engine with shards locked to the fleet width under test.
func fleetOptions(seed int64, shards int) Options {
	return Options{
		Seed:        seed,
		Scale:       0.02,
		ProbeWatch:  20 * time.Second,
		Parallelism: 2,
		Shards:      shards,
	}
}

// executeFleet measures every shard of an N-way fleet, each on a fresh
// Study (collectors share nothing in a real fleet), and returns the shard
// datasets.
func executeFleet(t *testing.T, opts Options, n int) []*store.Dataset {
	t.Helper()
	shards := make([]*store.Dataset, n)
	for i := 0; i < n; i++ {
		st, err := NewStudyChecked(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := st.ExecuteShard(i, n)
		if err != nil && !DegradedOnly(err) {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		if ds.Shard == nil {
			t.Fatalf("shard %d/%d dataset has no manifest", i, n)
		}
		shards[i] = ds
	}
	return shards
}

// digestOf is the suite's digest helper.
func digestOf(t *testing.T, ds *store.Dataset) string {
	t.Helper()
	d, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// roundTripShards persists each shard dataset in the given format and
// loads them all back through one shared dedup table — the exact path
// hbbtv-merge takes.
func roundTripShards(t *testing.T, shards []*store.Dataset, format store.Format) ([]*store.Dataset, *store.Dedup) {
	t.Helper()
	dd := store.NewDedup()
	out := make([]*store.Dataset, len(shards))
	for i, ds := range shards {
		var buf bytes.Buffer
		if err := store.Save(&buf, ds, format); err != nil {
			t.Fatalf("save shard %d: %v", i, err)
		}
		loaded, err := store.LoadDedup(bytes.NewReader(buf.Bytes()), dd)
		if err != nil {
			t.Fatalf("load shard %d: %v", i, err)
		}
		if loaded.Shard == nil {
			t.Fatalf("shard %d manifest lost in %v round trip", i, format)
		}
		out[i] = loaded
	}
	return out, dd
}

// TestFleetDigestParity is the tentpole invariant over 3 seeds × N=1/2/4:
// merging the N shard datasets — both in memory and after a snapshot
// round trip with cross-shard dedup — reproduces the single-process
// sharded run byte for byte.
func TestFleetDigestParity(t *testing.T) {
	for _, seed := range []int64{1, 7, 321} {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("seed=%d/n=%d", seed, n), func(t *testing.T) {
				opts := fleetOptions(seed, n)
				ref, err := NewStudyChecked(opts)
				if err != nil {
					t.Fatal(err)
				}
				refDS, err := ref.ExecuteRuns()
				if err != nil {
					t.Fatal(err)
				}
				want := digestOf(t, refDS)

				shards := executeFleet(t, opts, n)
				merged, err := Merge(shards...)
				if err != nil {
					t.Fatalf("merge: %v", err)
				}
				if got := digestOf(t, merged); got != want {
					t.Errorf("in-memory merge digest %s != single-process %s", got, want)
				}
				if merged.Shard != nil {
					t.Error("merged dataset still carries a shard manifest")
				}

				persisted, dd := roundTripShards(t, shards, store.FormatSnapshot)
				merged2, err := Merge(persisted...)
				if err != nil {
					t.Fatalf("merge persisted: %v", err)
				}
				if got := digestOf(t, merged2); got != want {
					t.Errorf("persisted merge digest %s != single-process %s", got, want)
				}
				if n > 1 {
					// Every shard's world serves the same tracker payloads, so
					// the shared table must have found cross-shard duplicates.
					if stats := dd.Stats(); stats.BlobsShared == 0 && stats.HeadersShared == 0 {
						t.Error("cross-shard dedup shared nothing")
					}
				}
			})
		}
	}
}

// TestFleetChaosDigestParity proves the parity holds for fault-degraded
// campaigns: shards executed under deterministic fault injection merge to
// the same digest as the degraded single-process run.
func TestFleetChaosDigestParity(t *testing.T) {
	const n = 4
	opts := chaosOptions(2) // Shards: 4 — the fleet width must match
	ref, err := NewStudyChecked(opts)
	if err != nil {
		t.Fatal(err)
	}
	refDS, err := ref.ExecuteRunsContext(context.Background())
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	want := digestOf(t, refDS)

	shards := executeFleet(t, opts, n)
	// The JSON format must round-trip manifests and merge identically too.
	persisted, _ := roundTripShards(t, shards, store.FormatJSON)
	merged, err := Merge(persisted...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := digestOf(t, merged); got != want {
		t.Errorf("degraded fleet merge digest %s != single-process %s", got, want)
	}
}

// TestFleetWiderThanChannels: a fleet wider than the channel list leaves
// its tail collectors with empty partitions, which must merge neutrally.
func TestFleetWiderThanChannels(t *testing.T) {
	opts := Options{Seed: 5, Scale: 0.004, ProbeWatch: 20 * time.Second, Parallelism: 1, Shards: 64}
	ref, err := NewStudyChecked(opts)
	if err != nil {
		t.Fatal(err)
	}
	channels, err := ref.Selected()
	if err != nil {
		t.Fatal(err)
	}
	if len(channels) >= 64 {
		t.Skipf("world too large (%d channels) for the clamp case", len(channels))
	}
	refDS, err := ref.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	shards := executeFleet(t, opts, 64)
	empty := 0
	for _, ds := range shards {
		if ds.Shard.AssignedChannels() == 0 {
			empty++
		}
	}
	if empty != 64-len(channels) {
		t.Errorf("%d empty shards, want %d", empty, 64-len(channels))
	}
	merged, err := Merge(shards...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got, want := digestOf(t, merged), digestOf(t, refDS); got != want {
		t.Errorf("clamped fleet merge digest %s != single-process %s", got, want)
	}
}

// TestMergeManifestVerification exercises the merge's rejection paths:
// mismatched parameters, missing and duplicate shards, no manifest.
func TestMergeManifestVerification(t *testing.T) {
	opts := fleetOptions(1, 2)
	shards := executeFleet(t, opts, 2)

	if _, err := Merge(shards[0]); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Errorf("missing shard not rejected: %v", err)
	}
	if _, err := Merge(shards[0], shards[0]); err == nil || !strings.Contains(err.Error(), "duplicate shard") {
		t.Errorf("duplicate shard not rejected: %v", err)
	}
	if _, err := Merge(shards[0], &store.Dataset{}); err == nil || !strings.Contains(err.Error(), "no shard manifest") {
		t.Errorf("manifest-less dataset not rejected: %v", err)
	}

	otherSeed := executeFleet(t, fleetOptions(2, 2), 2)
	if _, err := Merge(shards[0], otherSeed[1]); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed mismatch not rejected: %v", err)
	}

	otherWidth := executeFleet(t, fleetOptions(1, 4), 4)
	if _, err := Merge(shards[0], otherWidth[1]); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("width mismatch not rejected: %v", err)
	}

	faulty, err := NewStudyChecked(Options{
		Seed: 1, Scale: 0.02, ProbeWatch: 20 * time.Second, Parallelism: 2, Shards: 2,
		Faults: &faults.Config{Rate: 0.2},
		Retry:  core.RetryPolicy{MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultyDS, err := faulty.ExecuteShard(1, 2)
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	if _, err := Merge(shards[0], faultyDS); err == nil || !strings.Contains(err.Error(), "fault config") {
		t.Errorf("fault-config mismatch not rejected: %v", err)
	}
}

// TestExecuteShardValidation covers the shard-argument and telemetry
// sizing guards.
func TestExecuteShardValidation(t *testing.T) {
	st := NewStudy(Options{Seed: 1, Scale: 0.01, ProbeWatch: 20 * time.Second})
	if _, err := st.ExecuteShard(0, 0); err == nil {
		t.Error("of=0 accepted")
	}
	if _, err := st.ExecuteShard(-1, 2); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := st.ExecuteShard(2, 2); err == nil {
		t.Error("shard == of accepted")
	}

	small := NewStudy(Options{
		Seed: 1, Scale: 0.01, ProbeWatch: 20 * time.Second,
		Telemetry: NewTelemetry(Options{}), // 1 slot: serial sizing
	})
	if _, err := small.ExecuteShard(3, 4); err == nil || !strings.Contains(err.Error(), "shard slot") {
		t.Errorf("undersized telemetry registry accepted: %v", err)
	}
	sized := NewStudy(Options{
		Seed: 1, Scale: 0.01, ProbeWatch: 20 * time.Second,
		Telemetry: NewTelemetry(Options{Parallelism: 1, Shards: 4}),
	})
	ds, err := sized.ExecuteShard(3, 4)
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	if ds.Telemetry == nil {
		t.Error("shard dataset carries no telemetry snapshot")
	}
}

// TestFleetChildProcesses is the end-to-end topology test: real collector
// processes write shard snapshots, hbbtv-merge combines and verifies them
// against the single-process run — reliable and fault-injected.
func TestFleetChildProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process fleet suite skipped in -short")
	}
	dir := t.TempDir()
	measure := buildTool(t, dir, "hbbtv-measure")
	merge := buildTool(t, dir, "hbbtv-merge")

	cases := []struct {
		name  string
		n     int
		extra []string
	}{
		{name: "n=2", n: 2},
		{name: "n=4", n: 4},
		{name: "n=2-chaos", n: 2, extra: []string{"-fault-rate", "0.25", "-fault-seed", "11", "-retries", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			caseDir := filepath.Join(dir, tc.name)
			if err := os.MkdirAll(caseDir, 0o755); err != nil {
				t.Fatal(err)
			}
			base := append([]string{"-seed", "321", "-scale", "0.02"}, tc.extra...)

			single := filepath.Join(caseDir, "single.snap")
			runTool(t, measure, append(base, "-j", "2", "-shards", fmt.Sprint(tc.n), "-snapshot", single)...)

			shardFiles := make([]string, tc.n)
			for i := 0; i < tc.n; i++ {
				shardFiles[i] = filepath.Join(caseDir, fmt.Sprintf("shard%d.snap", i))
				runTool(t, measure, append(base,
					"-shard", fmt.Sprintf("%d/%d", i, tc.n), "-snapshot", shardFiles[i])...)
			}

			mergedOut := filepath.Join(caseDir, "merged.snap")
			out := runTool(t, merge, append([]string{"-verify", single, "-snapshot", mergedOut}, shardFiles...)...)
			if !strings.Contains(out, "verified: digest matches") {
				t.Errorf("merge output lacks verification line:\n%s", out)
			}

			f, err := os.Open(mergedOut)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			merged, err := store.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			if merged.Shard != nil {
				t.Error("merged snapshot still carries a shard manifest")
			}
		})
	}
}

// buildTool compiles one of the repo's commands into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// repoRoot locates the module root (the tests run from it already, but be
// explicit for clarity).
func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// runTool runs a built binary and fails the test on a non-zero exit.
func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}
