package hbbtvlab

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file is the in-process half of the crash-safety suite: it
// simulates SIGKILL by truncating the write-ahead journal at arbitrary
// byte offsets — exactly the file states a killed process leaves behind,
// since the journal is append-only — and asserts the resumed campaign's
// digest is byte-identical to an uninterrupted run's. The companion
// resume_chaos_test.go kills real hbbtv-measure processes.

// resumeStudy builds a fresh study for the chaos experiment. Every
// execution gets its own Study — frameworks accumulate state, and the
// point of the suite is that a resumed *fresh* process converges.
func resumeStudy(t *testing.T, opts Options) *Study {
	t.Helper()
	study, err := NewStudyChecked(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.SelectChannels(); err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	return study
}

func digestOrFatal(t *testing.T, ds *store.Dataset) string {
	t.Helper()
	if ds == nil {
		t.Fatal("nil dataset")
	}
	d, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// executeResumable runs a checkpointed campaign to completion and
// returns its dataset digest.
func executeResumable(t *testing.T, opts Options, co CheckpointOptions) string {
	t.Helper()
	study := resumeStudy(t, opts)
	ds, err := study.ExecuteResumable(context.Background(), co)
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	return digestOrFatal(t, ds)
}

// truncateCopy writes the first n bytes of src to dst.
func truncateCopy(t *testing.T, src, dst string, n int64) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if n > int64(len(raw)) {
		n = int64(len(raw))
	}
	if err := os.WriteFile(dst, raw[:n], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeCheckpointedRunMatchesPlain: merely journaling a campaign
// must not change a byte of its dataset, at any worker count.
func TestResumeCheckpointedRunMatchesPlain(t *testing.T) {
	base := digestOrFatal(t, runChaosStudy(t, chaosOptions(1)))
	dir := t.TempDir()
	for _, p := range []int{1, 4} {
		path := filepath.Join(dir, "clean", "j"+string(rune('0'+p))+".journal")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		got := executeResumable(t, chaosOptions(p), CheckpointOptions{Path: path})
		if got != base {
			t.Fatalf("checkpointed run (j=%d) digest differs from plain run:\n  %s\n  %s", p, got, base)
		}
	}
}

// TestResumeDigestParityAfterKill is the tentpole acceptance test: the
// journal of a complete campaign is cut at seed-derived byte offsets
// (the exact file a SIGKILL'd process leaves, torn tail included), the
// campaign is resumed from the cut — twice, emulating a second kill
// during the resume — and the final digest must be byte-identical to
// the uninterrupted run for every worker count, faults on.
func TestResumeDigestParityAfterKill(t *testing.T) {
	base := digestOrFatal(t, runChaosStudy(t, chaosOptions(1)))
	dir := t.TempDir()

	full := filepath.Join(dir, "full.journal")
	if got := executeResumable(t, chaosOptions(2), CheckpointOptions{Path: full}); got != base {
		t.Fatalf("uninterrupted checkpointed digest %s != plain digest %s", got, base)
	}
	fi, err := os.Stat(full)
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	// Seed-derived kill points, reported so a failure names its inputs
	// (same contract as the process-level chaos suite).
	const killSeed = int64(321)
	points := killPoints(killSeed, size, 3)
	t.Logf("kill seed %d, journal %d bytes, kill points %v", killSeed, size, points)

	for _, p := range []int{1, 2, 4, 8} {
		for ki, cut := range points {
			path := filepath.Join(dir, "killed.journal")
			truncateCopy(t, full, path, cut)

			// First resume — but cut ITS journal too (second kill) before
			// letting a final resume finish the campaign.
			study := resumeStudy(t, chaosOptions(p))
			ds, err := study.ExecuteResumable(context.Background(), CheckpointOptions{Path: path, Resume: true})
			if err != nil && !DegradedOnly(err) {
				t.Fatalf("j=%d kill %d at byte %d: first resume: %v", p, ki, cut, err)
			}
			if got := digestOrFatal(t, ds); got != base {
				t.Fatalf("j=%d kill %d at byte %d: resumed digest differs:\n  %s\n  %s", p, ki, cut, got, base)
			}

			second := cut + (size-cut)/2
			truncateCopy(t, path, path, second)
			got := executeResumable(t, chaosOptions(p), CheckpointOptions{Path: path, Resume: true})
			if got != base {
				t.Fatalf("j=%d kill %d: digest differs after second kill at byte %d:\n  %s\n  %s", p, ki, second, got, base)
			}
		}
	}
}

// TestResumeRejectsMismatchedStudy: a journal must only resume the exact
// campaign that wrote it; every divergence is rejected with the
// differing field named.
func TestResumeRejectsMismatchedStudy(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	executeResumable(t, chaosOptions(2), CheckpointOptions{Path: full})

	cases := []struct {
		name   string
		mutate func(o *Options)
		want   string
	}{
		{"seed", func(o *Options) { o.Seed = 999 }, "seed"},
		{"scale", func(o *Options) { o.Scale = 0.08 }, "scale"},
		{"fault config", func(o *Options) { o.Faults.Rate = 0.5 }, "fault config"},
		{"retry policy", func(o *Options) { o.Retry.MaxAttempts = 5 }, "retry policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := chaosOptions(2)
			tc.mutate(&opts)
			study := resumeStudy(t, opts)
			_, err := study.ExecuteResumable(context.Background(), CheckpointOptions{Path: full, Resume: true})
			if err == nil {
				t.Fatalf("resume with mismatched %s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the differing field %q", err, tc.want)
			}
		})
	}

	// Mismatched worker counts are NOT a divergence — parallelism never
	// changes the dataset, so a journal written at -j 2 resumes at -j 8.
	got := executeResumable(t, chaosOptions(8), CheckpointOptions{Path: full, Resume: true})
	want := digestOrFatal(t, runChaosStudy(t, chaosOptions(1)))
	if got != want {
		t.Fatalf("resume at different worker count changed the digest:\n  %s\n  %s", got, want)
	}

	// A cold start must refuse to clobber an existing journal.
	study := resumeStudy(t, chaosOptions(2))
	if _, err := study.ExecuteResumable(context.Background(), CheckpointOptions{Path: full}); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("cold start over an existing journal: %v", err)
	}
}

// TestResumeSerialEngineRejected: the serial procedure has no cell
// boundary and must say so instead of producing an unresumable journal.
func TestResumeSerialEngineRejected(t *testing.T) {
	opts := chaosOptions(0)
	study := resumeStudy(t, opts)
	_, err := study.ExecuteResumable(context.Background(), CheckpointOptions{Path: filepath.Join(t.TempDir(), "x.journal")})
	if err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Fatalf("serial ExecuteResumable: %v", err)
	}
}

// TestResumeQuarantineRoundTrip: a channel quarantined before the kill
// must stay quarantined after the resume — the retry policy's cross-run
// bookkeeping rides in the cell state, so the benched channel gets no
// bonus retries in the runs measured after the resume.
func TestResumeQuarantineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	base := executeResumable(t, chaosOptions(2), CheckpointOptions{Path: full})

	cp, _, err := store.LoadJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	// Find a cell that carries quarantine state with runs still ahead of
	// it — the interesting kill point.
	cut := -1
	for i, cell := range cp.Cells {
		if len(cell.State.Quarantined) > 0 && cell.RunIndex < len(cp.Runs)-1 {
			cut = i
		}
	}
	if cut < 0 {
		t.Skip("no mid-campaign quarantine under this fault plan; raise the rate to exercise this path")
	}
	target := cp.Cells[cut]
	t.Logf("cutting after cell %d (shard %d, run %s), quarantined: %v",
		cut, target.Shard, target.Run, target.State.Quarantined)

	// Rebuild a journal holding exactly the cells up to and including the
	// quarantine-carrying one (frame order preserves per-shard run order,
	// so the prefix is per-shard contiguous).
	hdr := *cp
	hdr.Cells = nil
	cutPath := filepath.Join(dir, "cut.journal")
	j, err := store.CreateJournal(cutPath, &hdr, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cp.Cells[:cut+1] {
		if err := j.Append(cell); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	study := resumeStudy(t, chaosOptions(2))
	ds, err := study.ExecuteResumable(context.Background(), CheckpointOptions{Path: cutPath, Resume: true})
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	if got := digestOrFatal(t, ds); got != base {
		t.Fatalf("resume across a quarantine boundary changed the digest:\n  %s\n  %s", got, base)
	}

	// Beyond digest parity, assert the mechanism directly: in every run
	// after the cut, the benched channels never report attempts — they
	// are skipped as quarantined, not re-retried.
	laterRuns := 0
	for _, run := range ds.Runs {
		ri := -1
		for i, name := range cp.Runs {
			if name == run.Name {
				ri = i
			}
		}
		if ri <= target.RunIndex {
			continue
		}
		laterRuns++
		for _, name := range target.State.Quarantined {
			for _, o := range run.Outcomes {
				if o.Channel != name {
					continue
				}
				if o.Status != store.OutcomeQuarantined {
					t.Errorf("run %s: channel %s was quarantined at the kill but has status %s after resume",
						run.Name, name, o.Status)
				}
				if o.Attempts != 0 {
					t.Errorf("run %s: quarantined channel %s got %d bonus attempts after resume",
						run.Name, name, o.Attempts)
				}
			}
		}
	}
	if laterRuns == 0 {
		t.Fatal("no runs after the quarantine cut — the assertion never ran")
	}
}

// killPoints derives n deterministic byte offsets in (6, size) from a
// seed, spread across the journal so kills land early, middle, and late.
// Exported to the failure report via t.Logf wherever it is used, so a
// red run names the exact (seed, size) pair to replay.
func killPoints(seed, size int64, n int) []int64 {
	pts := make([]int64, n)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0x1234
	for i := range pts {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Segment i of n, offset jittered inside the segment.
		seg := size / int64(n)
		off := int64(i)*seg + int64(x%uint64(seg))
		if off <= 6 {
			off = 7 // past the journal preamble
		}
		pts[i] = off
	}
	return pts
}
