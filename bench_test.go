package hbbtvlab

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at paper scale (3,575 received services, 396 analyzed
// channels, the five measurement runs). The full study executes once per
// test binary; each benchmark then measures the analysis that produces its
// table/figure and reports the reproduced headline numbers as metrics so
// the paper-vs-measured comparison is part of the bench output.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/consent"
	"github.com/hbbtvlab/hbbtvlab/internal/cookies"
	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/graphx"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

var (
	benchOnce    sync.Once
	benchFunnel  *core.FunnelReport
	benchDataset *store.Dataset
	benchResults *Results
	benchWorld   *synth.World
)

// benchFixture runs the paper-scale study once and reuses it everywhere.
func benchFixture(b *testing.B) (*store.Dataset, *Results) {
	b.Helper()
	benchOnce.Do(func() {
		start := time.Now()
		study := NewStudy(Options{Seed: 1, Scale: 1.0})
		funnel, err := study.SelectChannels()
		if err != nil {
			panic(err)
		}
		ds, err := study.ExecuteRuns()
		if err != nil {
			panic(err)
		}
		benchWorld = study.World
		benchFunnel = funnel
		benchDataset = ds
		benchResults = Analyze(ds)
		fmt.Fprintf(os.Stderr, "[bench fixture] paper-scale study: %d channels, %d flows, built in %v\n",
			funnel.FinalCount(), len(ds.AllFlows()), time.Since(start).Round(time.Millisecond))
	})
	return benchDataset, benchResults
}

// BenchmarkChannelFunnel regenerates the Section IV-B funnel (3,575
// received -> 396 analyzed).
func BenchmarkChannelFunnel(b *testing.B) {
	benchFixture(b)
	defer b.ReportMetric(float64(benchFunnel.Received), "received")
	defer b.ReportMetric(float64(benchFunnel.FinalCount()), "final")
	clk := clock.NewVirtual(time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: 1, Scale: 1.0}, clk)
	bouquet := dvb.NewReceiver().Scan(world.Universe)
	// Benchmark the metadata filtering steps (probe = AIT presence, so the
	// loop cost is the funnel logic itself, not the exploratory watching).
	probe := func(svc *dvb.Service) (bool, error) { return svc.HasAIT(), nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectChannels(bouquet, probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates Table I (per-run data overview).
func BenchmarkTableI(b *testing.B) {
	ds, res := benchFixture(b)
	var totalReq int
	for _, row := range res.TableI {
		totalReq += row.HTTPReq + row.HTTPSReq
	}
	defer b.ReportMetric(float64(totalReq), "requests")
	defer b.ReportMetric(res.Stats.RunTraffic.P, "p-run-traffic")
	fp := res.FirstParties
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range ds.Runs {
			events := cookies.SetEvents(run, fp)
			_, _ = cookies.FirstThirdCounts(events)
			_, _ = run.CountHTTPS()
		}
	}
}

// BenchmarkTableII regenerates Table II (cookie-setting third parties).
func BenchmarkTableII(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.TableII[1].Parties), "red-3ps")
	var events []cookies.SetEvent
	for _, run := range ds.Runs {
		events = append(events, cookies.SetEvents(run, res.FirstParties)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range store.AllRuns {
			_ = cookies.AnalyzeThirdParty(run, events)
		}
	}
}

// BenchmarkTableIII regenerates Table III (filter lists vs heuristics).
func BenchmarkTableIII(b *testing.B) {
	ds, res := benchFixture(b)
	var pixels, piHole int
	for _, r := range res.TableIII {
		pixels += r.TrackingPxl
		piHole += r.OnPiHole
	}
	defer b.ReportMetric(float64(pixels), "pixels")
	defer b.ReportMetric(float64(piHole), "pihole-hits")
	cls := tracking.NewClassifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range ds.Runs {
			_ = cls.ListStats(run)
		}
	}
}

// BenchmarkTableIV regenerates Table IV (overlay-type distribution).
func BenchmarkTableIV(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Consent.TableIV[1].MediaLib), "red-medialib")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range ds.Runs {
			_ = consent.OverlayDistribution(run)
		}
	}
}

// BenchmarkTableV regenerates Table V (privacy-information prevalence).
func BenchmarkTableV(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Consent.ChannelsWithPrivacy), "privacy-channels")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, run := range ds.Runs {
			_ = consent.PrivacyPrevalence(run)
		}
	}
}

// BenchmarkFigure5 regenerates Fig. 5 (cookie-using third-party long tail).
func BenchmarkFigure5(b *testing.B) {
	ds, res := benchFixture(b)
	if len(res.Fig5.Top) > 0 {
		defer b.ReportMetric(float64(res.Fig5.Top[0].Degree), "top-party-channels")
	}
	var events []cookies.SetEvent
	for _, run := range ds.Runs {
		events = append(events, cookies.SetEvents(run, res.FirstParties)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cookies.PartyChannelCounts(events)
	}
}

// BenchmarkFigure6 regenerates Fig. 6 (trackers per channel).
func BenchmarkFigure6(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(res.Fig6.Requests.Mean, "mean-tracking-req")
	defer b.ReportMetric(res.Fig6.Requests.Max, "max-tracking-req")
	cls := tracking.NewClassifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cls.PerChannel(ds.Runs)
	}
}

// BenchmarkFigure7 regenerates Fig. 7 (trackers by channel category).
func BenchmarkFigure7(b *testing.B) {
	ds, res := benchFixture(b)
	if len(res.Fig7) > 0 {
		defer b.ReportMetric(float64(res.Fig7[0].TrackingRequests), "top-category-req")
	}
	cls := tracking.NewClassifier()
	byChannel := cls.PerChannel(ds.Runs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tracking.PerCategory(byChannel, ds, 10)
	}
}

// BenchmarkFigure8 regenerates Fig. 8 (ecosystem graph metrics).
func BenchmarkFigure8(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Fig8.Nodes), "nodes")
	defer b.ReportMetric(float64(res.Fig8.Edges), "edges")
	defer b.ReportMetric(res.Fig8.AvgPathLength, "avg-path-len")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphx.FromDataset(ds, res.FirstParties)
		_ = g.AveragePathLength()
		_ = g.MeanNeighborDegree()
	}
}

// BenchmarkLeakage regenerates the Section V-B personal-data search.
func BenchmarkLeakage(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Leaks.TechnicalChannels), "tech-channels")
	defer b.ReportMetric(float64(res.Leaks.TechnicalParties), "tech-parties")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaks := tracking.FindLeaks(ds, res.FirstParties, tracking.LGNeedles)
		_ = tracking.Summarize(leaks, res.FirstParties)
	}
}

// BenchmarkCookieSync regenerates the Section V-C3 syncing detection.
func BenchmarkCookieSync(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Cookies.SyncParties), "sync-parties")
	var events []cookies.SetEvent
	for _, run := range ds.Runs {
		events = append(events, cookies.SetEvents(run, res.FirstParties)...)
	}
	lo := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	hi := time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cookies.DetectSyncing(ds.Runs, events, lo, hi)
	}
}

// BenchmarkChildrenCaseStudy regenerates Section V-D5.
func BenchmarkChildrenCaseStudy(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(len(res.Children.Channels)), "children-channels")
	defer b.ReportMetric(float64(res.Children.TrackingRequests), "tracking-req")
	defer b.ReportMetric(res.Children.MWU.P, "mwu-p")
	cls := tracking.NewClassifier()
	byChannel := cls.PerChannel(ds.Runs)
	var child, other []float64
	for _, name := range ds.ChannelNames() {
		n := 0.0
		if cs := byChannel[name]; cs != nil {
			n = float64(cs.TrackerCount())
		}
		if info := ds.ChannelInfo(name); info != nil && info.TargetsChildren() {
			child = append(child, n)
		} else {
			other = append(other, n)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.MannWhitney(child, other); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsentNotices regenerates the Section VI notice inventory.
func BenchmarkConsentNotices(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(len(res.Consent.Styles)), "stylings")
	defer b.ReportMetric(float64(res.Consent.Nudging.DefaultIsAccept), "default-accept")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = consent.NoticeInventory(ds)
	}
}

// BenchmarkPolicyPipeline regenerates the Section VII corpus pipeline.
func BenchmarkPolicyPipeline(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(res.Policies.Corpus.Occurrences), "occurrences")
	defer b.ReportMetric(float64(len(res.Policies.Corpus.Unique)), "unique")
	defer b.ReportMetric(float64(len(res.Policies.Corpus.NearDuplicateGroups)), "neardup-groups")
	defer b.ReportMetric(float64(len(res.Policies.WindowViolations)), "window-violations")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = policy.Collect(ds)
	}
}

// BenchmarkDerivedRules regenerates the future-work extension: filter
// rules derived from observed traffic, and the coverage they add over the
// Pi-hole base list.
func BenchmarkDerivedRules(b *testing.B) {
	ds, res := benchFixture(b)
	defer b.ReportMetric(float64(len(res.DerivedRules)), "rules")
	defer b.ReportMetric(res.Extension.CoverageBefore()*100, "coverage-before-pct")
	defer b.ReportMetric(res.Extension.CoverageAfter()*100, "coverage-after-pct")
	cls := tracking.NewClassifier()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cls.DeriveFilterRules(ds, res.FirstParties, cls.PiHole)
	}
}

// BenchmarkAnalyze measures the full analysis engine at paper scale for
// increasing worker counts. Every parallel sub-benchmark hard-asserts
// that its Results JSON equals the j=1 bytes — the engine's determinism
// contract — and reports its wall-clock speedup against j=1. Each
// sub-benchmark also reports gomaxprocs: speedup is bounded by the cores
// the runner actually has, and the bench-regression gate
// (internal/benchgate) clamps its floor by this metric, so a 1-core CI
// box does not fail the 8-worker scaling target it cannot express.
func BenchmarkAnalyze(b *testing.B) {
	ds, _ := benchFixture(b)
	var (
		baseline   []byte
		serialTime time.Duration
	)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			var encoded []byte
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				encoded, err = json.Marshal(res)
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start) / time.Duration(b.N)
			if baseline == nil {
				baseline = encoded
				serialTime = elapsed
			} else if !bytes.Equal(encoded, baseline) {
				b.Fatalf("j=%d Results differ from j=1; engine is not worker-independent", j)
			}
			if serialTime > 0 {
				b.ReportMetric(float64(serialTime)/float64(elapsed), "speedup-vs-serial")
			}
		})
	}
}

// BenchmarkAnalyzeSections measures a single-section analysis — the cost
// a caller pays for one table instead of the full evaluation.
func BenchmarkAnalyzeSections(b *testing.B) {
	ds, _ := benchFixture(b)
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{
			Parallelism: 4,
			Sections:    []Section{SectionTableI},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeSinglePass quantifies the engine's core optimisation —
// classifying every flow once in the shared index instead of once per
// analysis — by comparing the indexed engine against the multi-pass
// equivalent built from the retained standalone helpers (each of which
// re-classifies the flows it needs, as the pre-engine Analyze did). The
// speedup-vs-multipass metric holds on any core count: it measures work
// eliminated, not work overlapped.
func BenchmarkAnalyzeSinglePass(b *testing.B) {
	ds, _ := benchFixture(b)
	var indexedTime time.Duration
	b.Run("indexed", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		indexedTime = time.Since(start) / time.Duration(b.N)
	})
	b.Run("multipass", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			cls := tracking.NewClassifier()
			fp := tracking.FirstParties(ds.Runs, cls.EasyList)
			var events []cookies.SetEvent
			for _, run := range ds.Runs {
				events = append(events, cookies.SetEvents(run, fp)...)
				_ = cls.ListStats(run) // Table III: one list pass per run
			}
			byChannel := cls.PerChannel(ds.Runs) // Fig. 6/7: classify again
			_ = tracking.PerCategory(byChannel, ds, 10)
			rules := cls.DeriveFilterRules(ds, fp, cls.PiHole) // classify again
			if _, err := cls.EvaluateExtension(ds, cls.PiHole, rules); err != nil {
				b.Fatal(err) // and again
			}
		}
		elapsed := time.Since(start) / time.Duration(b.N)
		if indexedTime > 0 {
			b.ReportMetric(float64(elapsed)/float64(indexedTime), "speedup-vs-multipass")
		}
	})
}

// BenchmarkPoolParallelism measures the sharded measurement engine at
// increasing worker counts. Beyond the timing, every sub-benchmark
// hard-asserts that its merged dataset digest equals the j=1 digest —
// speed may vary with the core count of the machine, byte-identity may
// not. The speedup-vs-serial metric reports the wall-clock ratio against
// the j=1 sub-benchmark.
func BenchmarkPoolParallelism(b *testing.B) {
	const seed, scale = 1, 0.1
	var (
		baseline   string
		serialTime time.Duration
	)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			var digest string
			start := time.Now()
			for i := 0; i < b.N; i++ {
				study := NewStudy(Options{
					Seed: seed, Scale: scale,
					ProbeWatch:  30 * time.Second,
					Parallelism: j,
				})
				ds, err := study.ExecuteRuns()
				if err != nil {
					b.Fatal(err)
				}
				digest, err = ds.Digest()
				if err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start) / time.Duration(b.N)
			if baseline == "" {
				baseline = digest
				serialTime = elapsed
			} else if digest != baseline {
				b.Fatalf("j=%d digest %s != j=1 digest %s; engine is not worker-independent", j, digest, baseline)
			}
			if serialTime > 0 {
				b.ReportMetric(float64(serialTime)/float64(elapsed), "speedup-vs-serial")
			}
		})
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkTransportModes compares the in-process transport against the
// real loopback path through the CONNECT-capable proxy: identical flows,
// orders of magnitude apart in cost.
func BenchmarkTransportModes(b *testing.B) {
	in := hostnet.New()
	in.HandleFunc("bench.example.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		_, _ = w.Write([]byte("GIF89a"))
	})
	b.Run("direct", func(b *testing.B) {
		rec := proxy.NewRecorder(&hostnet.Transport{Net: in}, clock.Real{})
		client := &http.Client{Transport: rec}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get("http://bench.example.de/px")
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	b.Run("loopback-proxy", func(b *testing.B) {
		upstream, err := hostnet.Serve(in)
		if err != nil {
			b.Fatal(err)
		}
		defer upstream.Close()
		rec := proxy.NewRecorder(&proxy.RerouteTransport{Addr: upstream.Addr()}, clock.Real{})
		srv, err := proxy.NewServer(rec)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(srv.URL())}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get("http://bench.example.de/px")
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

// BenchmarkFirstPartyRule compares the paper's filter-list-corrected
// first-party identification against the naive first-request rule.
func BenchmarkFirstPartyRule(b *testing.B) {
	ds, _ := benchFixture(b)
	cls := tracking.NewClassifier()
	corrected := tracking.FirstParties(ds.Runs, cls.EasyList)
	naive := tracking.NaiveFirstParties(ds.Runs)
	diff := 0
	for ch, fp := range corrected {
		if naive[ch] != fp {
			diff++
		}
	}
	defer b.ReportMetric(float64(diff), "channels-misclassified-by-naive")
	b.Run("corrected", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tracking.FirstParties(ds.Runs, cls.EasyList)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tracking.NaiveFirstParties(ds.Runs)
		}
	})
}

// BenchmarkIDHeuristic compares the paper's ID heuristic (length band +
// timestamp exclusion) against the length-only variant, reporting the
// timestamp false positives the exclusion removes.
func BenchmarkIDHeuristic(b *testing.B) {
	ds, res := benchFixture(b)
	var events []cookies.SetEvent
	for _, run := range ds.Runs {
		events = append(events, cookies.SetEvents(run, res.FirstParties)...)
	}
	lo := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	hi := time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	full, lenOnly := 0, 0
	seen := map[string]struct{}{}
	for _, e := range events {
		if _, dup := seen[e.Value]; dup {
			continue
		}
		seen[e.Value] = struct{}{}
		if cookies.IsLikelyID(e.Value, lo, hi) {
			full++
		}
		if cookies.IsLikelyIDLenOnly(e.Value) {
			lenOnly++
		}
	}
	defer b.ReportMetric(float64(full), "ids-full-heuristic")
	defer b.ReportMetric(float64(lenOnly-full), "timestamp-false-positives")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cookies.PotentialIDs(events, lo, hi)
	}
}

// BenchmarkAttribution compares referrer-corrected channel attribution
// against the naive last-switch rule on a synthetic switch-heavy exchange.
func BenchmarkAttribution(b *testing.B) {
	in := hostnet.New()
	in.HandleFunc("app.chan-a.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte("<html></html>"))
	})
	in.HandleFunc("late.tracker.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		_, _ = w.Write([]byte("GIF89a"))
	})
	run := func(b *testing.B, corrected bool) int {
		misattributed := 0
		clk := clock.NewVirtual(time.Date(2023, 9, 1, 10, 0, 0, 0, time.UTC))
		rec := proxy.NewRecorder(&hostnet.Transport{Net: in}, clk)
		rec.SetRefererCorrection(corrected)
		client := &http.Client{Transport: rec}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			rec.SwitchChannel("A", "1")
			_, _ = client.Get("http://app.chan-a.de/index.html")
			clk.Advance(30 * time.Second)
			rec.SwitchChannel("B", "2")
			clk.Advance(2 * time.Second)
			req, _ := http.NewRequest(http.MethodGet, "http://late.tracker.de/px", nil)
			req.Header.Set("Referer", "http://app.chan-a.de/index.html")
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			flows := rec.Flows()
			if flows[len(flows)-1].Channel != "A" {
				misattributed++
			}
		}
		return misattributed
	}
	b.Run("referer-corrected", func(b *testing.B) {
		if mis := run(b, true); mis != 0 {
			b.Fatalf("corrected attribution failed %d times", mis)
		}
	})
	b.Run("naive", func(b *testing.B) {
		if mis := run(b, false); mis != b.N {
			b.Fatalf("naive attribution accidentally correct (%d/%d wrong)", mis, b.N)
		}
	})
}

// BenchmarkMeasureThroughput measures the measurement engine end-to-end —
// synthesis, tuning, watching, recording — at paper scale, reporting
// flows/s. This is the hot path the interned flow records, arena
// allocation, and zero-clone header hand-over optimise; the bench-
// regression gate (internal/benchgate) holds the floor, clamped by the
// gomaxprocs metric so a small CI box is judged against a
// proportionally smaller target. Every sub-benchmark hard-asserts that
// its dataset digest equals the j=1 digest: throughput work must never
// buy speed with bytes.
func BenchmarkMeasureThroughput(b *testing.B) {
	var baseline string
	for _, j := range []int{1, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			var (
				digest string
				flows  int
			)
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				// Telemetry (spans included) stays on: the throughput floor
				// is the instrumented engine's, and the digest assert below
				// doubles as the observer-effect proof at paper scale.
				opts := Options{Seed: 1, Scale: 1.0, Parallelism: j}
				opts.Telemetry = NewTelemetry(opts)
				study := NewStudy(opts)
				start := time.Now()
				ds, err := study.ExecuteRuns()
				if err != nil {
					b.Fatal(err)
				}
				elapsed += time.Since(start)
				flows = len(ds.AllFlows())
				if ds.Trace == nil || len(ds.Trace.Spans) == 0 {
					b.Fatal("instrumented run produced no span trace")
				}
				if digest, err = ds.Digest(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed /= time.Duration(b.N)
			b.ReportMetric(float64(flows)/elapsed.Seconds(), "flows/s")
			b.ReportMetric(float64(flows), "flows")
			if baseline == "" {
				baseline = digest
			} else if digest != baseline {
				b.Fatalf("j=%d digest %s != j=1 digest %s; engine is not worker-independent", j, digest, baseline)
			}
		})
	}
}

// BenchmarkSpanOverhead measures the tracer hot path in isolation — one
// StartSpan/End pair on a shard slot, the cost every instrumented phase
// pays — reporting spans/s (floored by the benchgate) and allocs/span.
// The allocation pin is hard: the freelist and chunked arena make a
// note-less span amortize to well under one allocation, and the bench
// fails if that regresses, because the measurement engine opens a span
// for every visit, attempt, tune, AIT decode, and probe.
func BenchmarkSpanOverhead(b *testing.B) {
	const spansPerOp = 100_000
	base := time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)
	var elapsed time.Duration
	var mallocs, spans uint64
	for i := 0; i < b.N; i++ {
		reg := telemetry.New(telemetry.Options{Shards: 1, SpanCap: spansPerOp})
		now := base
		sh := reg.Shard(0, func() time.Time {
			now = now.Add(time.Millisecond)
			return now
		})
		// Warm the freelist and first chunk outside the measured window.
		sh.StartSpan(telemetry.SpanVisit, "warm").End()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for k := 0; k < spansPerOp; k++ {
			sh.StartSpan(telemetry.SpanVisit, "bench").End()
		}
		elapsed += time.Since(start)
		runtime.ReadMemStats(&after)
		mallocs += after.Mallocs - before.Mallocs
		spans += spansPerOp
	}
	perSpan := float64(mallocs) / float64(spans)
	b.ReportMetric(float64(spans)/elapsed.Seconds(), "spans/s")
	b.ReportMetric(perSpan, "allocs/span")
	if perSpan >= 1 {
		b.Fatalf("span hot path allocates %.3f objects per span, want amortized < 1", perSpan)
	}
}

var (
	mergeOnce   sync.Once
	mergeShards []*store.Dataset
	mergeDedup  *store.Dedup
)

// mergeFixture measures a 4-way fleet of the paper-scale study once and
// round-trips every shard through the snapshot format with one shared
// content-addressed table — the exact state hbbtv-merge holds after
// loading its inputs.
func mergeFixture(b *testing.B) ([]*store.Dataset, *store.Dedup) {
	b.Helper()
	mergeOnce.Do(func() {
		const n = 4
		start := time.Now()
		dd := store.NewDedup()
		for i := 0; i < n; i++ {
			study := NewStudy(Options{Seed: 1, Scale: 1.0, Parallelism: 2, Shards: n})
			ds, err := study.ExecuteShard(i, n)
			if err != nil {
				panic(err)
			}
			var buf bytes.Buffer
			if err := store.Save(&buf, ds, store.FormatSnapshot); err != nil {
				panic(err)
			}
			loaded, err := store.LoadDedup(bytes.NewReader(buf.Bytes()), dd)
			if err != nil {
				panic(err)
			}
			mergeShards = append(mergeShards, loaded)
		}
		mergeDedup = dd
		fmt.Fprintf(os.Stderr, "[bench fixture] %d-shard paper-scale fleet built in %v\n",
			n, time.Since(start).Round(time.Millisecond))
	})
	return mergeShards, mergeDedup
}

// BenchmarkMergeShards measures hbbtv-merge's hot path: manifest
// verification plus the canonical-order recombination of a 4-shard
// paper-scale fleet, reporting merged flows/s. The cross-shard dedup
// ratio of the loaded fixture rides along as a metric; the bench-
// regression gate (internal/benchgate) holds the flows/s floor, clamped
// by gomaxprocs like the other engine floors.
func BenchmarkMergeShards(b *testing.B) {
	shards, dd := mergeFixture(b)
	var flows int
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		merged, err := store.MergeShards(context.Background(), nil, shards)
		if err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		flows = len(merged.AllFlows())
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(dd.Stats().BlobRatio()*100, "dedup-blob-pct")
	b.ReportMetric(float64(flows), "flows")
	b.ReportMetric(float64(flows)*float64(b.N)/elapsed.Seconds(), "flows/s")
}

// BenchmarkSnapshotFormats compares dataset persistence costs: gzip-JSON
// save/load against the binary snapshot save/load, on the paper-scale
// dataset. The snapshot-load sub-benchmark is the one the CI acceptance
// criterion watches (paper-scale load well under 200 ms).
func BenchmarkSnapshotFormats(b *testing.B) {
	ds, _ := benchFixture(b)
	var jsonBytes, snapBytes []byte
	b.Run("save-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ds.Save(&buf); err != nil {
				b.Fatal(err)
			}
			jsonBytes = buf.Bytes()
		}
		b.ReportMetric(float64(len(jsonBytes)), "bytes")
	})
	b.Run("save-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ds.SaveSnapshot(&buf); err != nil {
				b.Fatal(err)
			}
			snapBytes = buf.Bytes()
		}
		b.ReportMetric(float64(len(snapBytes)), "bytes")
	})
	b.Run("load-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(bytes.NewReader(jsonBytes)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load-snapshot", func(b *testing.B) {
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			// Collect the previous iteration's ~170MB dataset outside the
			// timed region; a real consumer loads once and pays no such GC.
			runtime.GC()
			start := time.Now()
			if _, err := store.Load(bytes.NewReader(snapBytes)); err != nil {
				b.Fatal(err)
			}
			elapsed += time.Since(start)
		}
		perLoad := elapsed / time.Duration(b.N)
		b.ReportMetric(float64(perLoad.Milliseconds()), "ms/load")
	})
}
