package hbbtvlab

import (
	"sort"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/consent"
	"github.com/hbbtvlab/hbbtvlab/internal/cookies"
	"github.com/hbbtvlab/hbbtvlab/internal/graphx"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// TableIRow is one row of Table I (per-run data overview).
type TableIRow struct {
	Run          store.RunName
	Date         time.Time
	Channels     int
	HTTPReq      int
	HTTPSReq     int
	HTTPSShare   float64
	Cookies      int
	FirstParty   int
	ThirdParty   int
	LocalStorage int
}

// Figure5 captures the long-tail distribution of cookie-using third
// parties (party -> number of channels it set cookies on).
type Figure5 struct {
	PartyChannels map[string]int
	// Top lists parties by descending channel count.
	Top []graphx.NodeDegree
	// PartiesOnMoreThan10 counts third parties used by >10 channels
	// (the paper found only 25).
	PartiesOnMoreThan10 int
	// SingleChannelParties counts third parties seen on exactly one
	// channel (the paper found 38).
	SingleChannelParties int
}

// Figure6 captures the distribution of trackers/tracking requests per
// channel.
type Figure6 struct {
	Requests stats.Desc // tracking requests per channel (paper: mean 1,132, max 59,499)
	Trackers stats.Desc // distinct trackers per channel (paper: mean 7.25, max 33)
	// Top10Share is the share of total tracking requests issued by the 10
	// channels with the most trackers (paper: 6.34%).
	Top10Share float64
	// PerChannel maps channel -> tracking request count, for plotting.
	PerChannel map[string]int
}

// Figure8 captures the ecosystem-graph metrics of Section V-E.
type Figure8 struct {
	Nodes              int
	Edges              int
	Components         int
	AvgPathLength      float64
	MeanNeighborDegree float64
	DegreeMean         float64
	DegreeSD           float64
	TopNodes           []graphx.NodeDegree
	NodesWith10Edges   int
	SingleEdgeDomains  int
	XitiDegree         int
	TVPingDegree       int
}

// CookieFindings aggregates the Section V-C results.
type CookieFindings struct {
	DistinctCookies int
	ClassifiedShare float64 // Cookiepedia-style coverage (paper: 20.5%)
	// Purposes is the per-run purpose distribution (supplementary table);
	// color-button runs classify better and skew towards Targeting.
	Purposes           []PurposeRow
	TargetingShare     float64 // share of classified cookies that are Targeting
	SetByTrackingShare float64 // cookies set by tracking-labeled requests (paper: 92%)
	PotentialIDs       int     // values passing the ID heuristic (paper: 14,236)
	SyncEvents         []cookies.SyncEvent
	SyncParties        int // distinct minting parties involved (paper: 2)
	SyncChannels       int // channels with syncing observed (paper: 20)
}

// PurposeRow re-exports the per-run cookie purpose distribution.
type PurposeRow = cookies.PurposeDistribution

// LeakFindings aggregates Section V-B.
type LeakFindings = tracking.LeakSummary

// ChildrenFindings is the Section V-D5 case study.
type ChildrenFindings struct {
	Channels         []string
	TrackingRequests int
	TargetingCookies int
	// MWU compares children's channels to all others on tracker counts;
	// the paper found no significant difference (p > 0.3).
	MWU stats.MannWhitneyResult
}

// ConsentFindings aggregates Section VI.
type ConsentFindings struct {
	TableIV             []consent.OverlayRow
	TableV              []consent.PrevalenceRow
	ChannelsWithPrivacy int
	Styles              []consent.StyleSummary
	Nudging             consent.NudgeFindings
	Pointers            consent.PointerStats
	// AgreementInitial/AgreementRefined reproduce the two-annotator
	// codebook validation (Cohen's kappa before and after refinement).
	AgreementInitial consent.AgreementResult
	AgreementRefined consent.AgreementResult
	// LocationAds are overlays naming the measurement city in ad copy
	// (Section VI "Other Observations").
	LocationAds []consent.LocationTargetedAd
}

// PolicyFindings aggregates Section VII.
type PolicyFindings struct {
	Corpus *policy.Corpus
	// HbbTVMentions counts unique policies mentioning "HbbTV" (paper: 72%).
	HbbTVMentions int
	// BlueButtonMentions counts policies pointing to blue-button settings
	// (paper: 8).
	BlueButtonMentions int
	// TDDDGMentions counts policies referencing the TTDSG/TDDDG (paper: 1).
	TDDDGMentions int
	// ThirdPartyDeclaring counts policies declaring third-party sharing
	// (paper: 52% of German policies).
	ThirdPartyDeclaring int
	// LegitimateInterest counts policies invoking legitimate interests
	// (paper: 10).
	LegitimateInterest int
	// RightsCoverage counts policies declaring each data-subject right.
	RightsCoverage map[policy.GDPRArticle]int
	// OptOutContradictions counts policies framing targeted ads as opt-out.
	OptOutContradictions int
	// VaguePolicies counts policies whose hedging density crosses the
	// vagueness threshold (the Sachsen Eins case).
	VaguePolicies int
	// AdWindow is the declared children's-group profiling window.
	AdWindow policy.AdWindow
	// AdWindowDeclared reports whether any policy declared such a window.
	AdWindowDeclared bool
	// WindowViolations are tracking requests outside the declared window
	// on channels covered by that policy.
	WindowViolations []policy.WindowViolation
}

// StatFindings holds the study's statistical tests.
type StatFindings struct {
	RunTraffic       stats.KruskalWallisResult // run -> per-channel request volume
	RunCookies       stats.KruskalWallisResult // run -> per-channel cookies set
	ChannelTrackers  stats.KruskalWallisResult // channel -> tracking requests (per run)
	CategoryTrackers stats.KruskalWallisResult // category -> tracking requests
}

// Results bundles every reproduced table, figure, and finding. When
// AnalyzeContext ran with a section selection, only the selected sections'
// fields are populated (FirstParties — an index byproduct — is always set).
type Results struct {
	TableI   []TableIRow
	TableII  []cookies.ThirdPartyUsage
	TableIII []tracking.RunListStats
	Fig5     Figure5
	Fig6     Figure6
	Fig7     []tracking.CategoryStats
	Fig8     Figure8

	FirstParties map[string]string
	Leaks        LeakFindings
	Cookies      CookieFindings
	Children     ChildrenFindings
	Consent      ConsentFindings
	Policies     PolicyFindings
	Stats        StatFindings

	// SmartTVLists reports the smart-TV block-list comparison of V-D:
	// requests blocked by Pi-hole vs Perflyst vs Kamran.
	SmartTVLists map[string]int

	// DerivedRules implements the paper's future-work proposal: filter
	// rules automatically derived from the observed traffic, with the
	// coverage improvement over the Pi-hole base list.
	DerivedRules []tracking.DerivedRule
	Extension    tracking.ExtensionResult
}

// --- Section analyzers -------------------------------------------------
//
// Each analyzer reads the shared dataset index and writes its own,
// disjoint slice of Results; the engine in analyze_engine.go may run any
// subset of them concurrently. None of them re-walks ds.Runs for
// classification — that happened exactly once, in store.BuildIndex.

// analyzeTableI reproduces Table I (per-run data overview).
func analyzeTableI(env *analysisEnv, res *Results) {
	for i, run := range env.ds.Runs {
		ri := &env.ix.Runs[i]
		first, third := cookies.FirstThirdCounts(ri.SetEvents)
		res.TableI = append(res.TableI, TableIRow{
			Run: run.Name, Date: run.Date,
			Channels: len(run.Channels),
			HTTPReq:  ri.PlainRequests, HTTPSReq: ri.HTTPSRequests,
			HTTPSShare:   ri.HTTPSShare(),
			Cookies:      len(run.Cookies),
			FirstParty:   first,
			ThirdParty:   third,
			LocalStorage: len(run.Storage),
		})
	}
}

// analyzeTableII reproduces Table II (cookie-setting third parties).
func analyzeTableII(env *analysisEnv, res *Results) {
	for _, run := range env.ds.Runs {
		res.TableII = append(res.TableII,
			cookies.AnalyzeThirdParty(run.Name, env.ix.SetEvents))
	}
}

// analyzeTableIII reproduces Table III plus the smart-TV list comparison,
// entirely from the index's per-run hit counters.
func analyzeTableIII(env *analysisEnv, res *Results) {
	var piHole, perflyst, kamran int
	for i, run := range env.ds.Runs {
		ri := &env.ix.Runs[i]
		res.TableIII = append(res.TableIII, tracking.RunListStats{
			Run:          run.Name,
			OnPiHole:     ri.OnPiHole,
			OnEasyList:   ri.OnEasyList,
			OnEasyPriv:   ri.OnEasyPrivacy,
			TrackingPxl:  ri.TrackingPixels,
			Fingerprints: ri.FingerprintScripts,
		})
		piHole += ri.OnPiHole
		perflyst += ri.OnPerflyst
		kamran += ri.OnKamran
	}
	res.SmartTVLists = map[string]int{
		"Pi-hole": piHole, "Perflyst": perflyst, "Kamran": kamran,
	}
}

// analyzeFig5 reproduces Fig. 5.
func analyzeFig5(env *analysisEnv, res *Results) {
	counts := cookies.PartyChannelCounts(env.ix.SetEvents)
	f := Figure5{PartyChannels: counts}
	for p, n := range counts {
		f.Top = append(f.Top, graphx.NodeDegree{Node: p, Degree: n})
		if n > 10 {
			f.PartiesOnMoreThan10++
		}
		if n == 1 {
			f.SingleChannelParties++
		}
	}
	sort.Slice(f.Top, func(a, b int) bool {
		if f.Top[a].Degree != f.Top[b].Degree {
			return f.Top[a].Degree > f.Top[b].Degree
		}
		return f.Top[a].Node < f.Top[b].Node
	})
	res.Fig5 = f
}

// analyzeFig6 reproduces Fig. 6.
func analyzeFig6(env *analysisEnv, res *Results) {
	byChannel := env.ix.PerChannelTracking
	f := Figure6{PerChannel: make(map[string]int, len(byChannel))}
	var reqs, trackers []float64
	type chReq struct {
		channel  string
		trackers int
		requests int
	}
	var rows []chReq
	total := 0
	for ch, cs := range byChannel {
		rows = append(rows, chReq{channel: ch, trackers: cs.TrackerCount(), requests: cs.TrackingRequests})
		f.PerChannel[ch] = cs.TrackingRequests
		total += cs.TrackingRequests
	}
	// Deterministic order: rank by trackers, break ties by requests, then
	// name (the top-10 cut must not depend on map iteration order).
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].trackers != rows[b].trackers {
			return rows[a].trackers > rows[b].trackers
		}
		if rows[a].requests != rows[b].requests {
			return rows[a].requests > rows[b].requests
		}
		return rows[a].channel < rows[b].channel
	})
	for _, r := range rows {
		reqs = append(reqs, float64(r.requests))
		trackers = append(trackers, float64(r.trackers))
	}
	f.Requests = stats.Describe(reqs)
	f.Trackers = stats.Describe(trackers)
	top10 := 0
	for i := 0; i < len(rows) && i < 10; i++ {
		top10 += rows[i].requests
	}
	if total > 0 {
		f.Top10Share = float64(top10) / float64(total)
	}
	res.Fig6 = f
}

// analyzeFig7 reproduces Fig. 7.
func analyzeFig7(env *analysisEnv, res *Results) {
	res.Fig7 = tracking.PerCategory(env.ix.PerChannelTracking, env.ds, 10)
}

// analyzeFig8 reproduces Fig. 8 (Section V-E ecosystem graph). The
// channel -> party scan runs over columnar row chunks (sets union
// order-independently), and the all-pairs BFS behind the average path
// length fans its sources out over the pool with int64 distance sums, so
// the reported float is bit-identical to the serial division.
func analyzeFig8(env *analysisEnv, res *Results) {
	var g *graphx.Graph
	if cols := env.ix.Columns(); cols == nil {
		g = graphx.FromDataset(env.ds, env.ix.FirstParty)
	} else {
		n := cols.Rows()
		parts := make([]map[string]map[string]struct{}, sectionChunks(n))
		if !env.scanChunks(n, func(chunk, lo, hi int) {
			local := make(map[string]map[string]struct{})
			for i := lo; i < hi; i++ {
				ch := cols.Flows[i].Channel
				if ch == "" {
					continue
				}
				set := local[ch]
				if set == nil {
					set = make(map[string]struct{})
					local[ch] = set
				}
				set[cols.Party(i)] = struct{}{}
			}
			parts[chunk] = local
		}) {
			return
		}
		merged := make(map[string]map[string]struct{})
		for _, part := range parts {
			for ch, set := range part {
				dst := merged[ch]
				if dst == nil {
					merged[ch] = set
					continue
				}
				for p := range set {
					dst[p] = struct{}{}
				}
			}
		}
		g = graphx.FromChannelParties(merged, env.ix.FirstParty)
	}
	// One BFS per node is the expensive part; a handful of sources per
	// chunk keeps a few hundred nodes divisible across workers.
	nodes := g.Nodes()
	const bfsChunk = 8
	type pathPart struct{ dist, pairs int64 }
	plParts := make([]pathPart, chunksOf(len(nodes), bfsChunk))
	if !env.scanChunksSized(len(nodes), bfsChunk, func(chunk, lo, hi int) {
		var p pathPart
		for _, src := range nodes[lo:hi] {
			d, n := g.PathLengthFrom(src)
			p.dist += d
			p.pairs += n
		}
		plParts[chunk] = p
	}) {
		return
	}
	var totalDist, pairs int64
	for _, p := range plParts {
		totalDist += p.dist
		pairs += p.pairs
	}
	avgPath := 0.0
	if pairs > 0 {
		avgPath = float64(totalDist) / float64(pairs)
	}
	mean, sd := g.DegreeStats()
	f := Figure8{
		Nodes:              g.NodeCount(),
		Edges:              g.EdgeCount(),
		Components:         len(g.Components()),
		AvgPathLength:      avgPath,
		MeanNeighborDegree: g.MeanNeighborDegree(),
		DegreeMean:         mean,
		DegreeSD:           sd,
		TopNodes:           topDomains(g, 3),
		NodesWith10Edges:   g.CountDegreeAtLeast(10),
		XitiDegree:         g.Degree("xiti.com"),
		TVPingDegree:       g.Degree("tvping.com"),
	}
	for node, deg := range g.Degrees() {
		if deg == 1 && g.Kind(node) == graphx.NodeDomain {
			f.SingleEdgeDomains++
		}
	}
	res.Fig8 = f
}

// topDomains ranks domain (non-channel) nodes by degree.
func topDomains(g *graphx.Graph, n int) []graphx.NodeDegree {
	var all []graphx.NodeDegree
	for node, deg := range g.Degrees() {
		if g.Kind(node) == graphx.NodeDomain {
			all = append(all, graphx.NodeDegree{Node: node, Degree: deg})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Degree != all[b].Degree {
			return all[a].Degree > all[b].Degree
		}
		return all[a].Node < all[b].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// analyzeLeaks reproduces the Section V-B leakage search, scanning row
// chunks concurrently and concatenating per-chunk leak lists in chunk
// order (exactly the serial emission order).
func analyzeLeaks(env *analysisEnv, res *Results) {
	cols := env.ix.Columns()
	if cols == nil {
		leaks := tracking.FindLeaks(env.ds, env.ix.FirstParty, tracking.LGNeedles)
		res.Leaks = tracking.Summarize(leaks, env.ix.FirstParty)
		return
	}
	n := cols.Rows()
	parts := make([][]tracking.Leak, sectionChunks(n))
	if !env.scanChunks(n, func(chunk, lo, hi int) {
		parts[chunk] = tracking.ScanLeaks(env.ix, tracking.LGNeedles, lo, hi)
	}) {
		return
	}
	var leaks []tracking.Leak
	for _, p := range parts {
		leaks = append(leaks, p...)
	}
	res.Leaks = tracking.Summarize(leaks, env.ix.FirstParty)
}

// analyzeCookies reproduces Section V-C.
func analyzeCookies(env *analysisEnv, res *Results) {
	events := env.ix.SetEvents
	lo, hi := env.ix.Window.Start, env.ix.Window.End
	f := CookieFindings{
		DistinctCookies: cookies.DistinctCookies(events),
		PotentialIDs:    cookies.PotentialIDs(events, lo, hi),
	}
	classified, targeting := 0, 0
	distinct := make(map[[2]string]struct{})
	for _, e := range events {
		key := [2]string{e.Party, e.Name}
		if _, dup := distinct[key]; dup {
			continue
		}
		distinct[key] = struct{}{}
		if purpose, known := cookies.ClassifyPurpose(e.Name); known {
			classified++
			if purpose == cookies.PurposeTargeting {
				targeting++
			}
		}
	}
	if len(distinct) > 0 {
		f.ClassifiedShare = float64(classified) / float64(len(distinct))
	}
	if classified > 0 {
		f.TargetingShare = float64(targeting) / float64(classified)
	}
	// Share of Set-Cookie responses arriving on tracking-labeled requests
	// (counted by the index across all flows, attributed or not).
	setTotal, setTracking := 0, 0
	for i := range env.ix.Runs {
		setTotal += env.ix.Runs[i].SetCookieFlows
		setTracking += env.ix.Runs[i].SetCookieTrackingFlows
	}
	if setTotal > 0 {
		f.SetByTrackingShare = float64(setTracking) / float64(setTotal)
	}
	for _, run := range env.ds.Runs {
		f.Purposes = append(f.Purposes, cookies.AnalyzePurposes(run.Name, events))
	}
	// Cookie syncing: the payload token scan is the heavy half, so it
	// runs over row chunks with chunk-local dedup; MergeSyncEvents
	// re-applies the global first-occurrence dedup in row order.
	if cols := env.ix.Columns(); cols == nil {
		f.SyncEvents = cookies.DetectSyncing(env.ds.Runs, events, lo, hi)
	} else {
		ids := cookies.MintedIDs(events, lo, hi)
		n := cols.Rows()
		parts := make([][]cookies.SyncEvent, sectionChunks(n))
		if !env.scanChunks(n, func(chunk, clo, chi int) {
			parts[chunk] = cookies.ScanSyncing(ids, env.ix, clo, chi)
		}) {
			return
		}
		f.SyncEvents = cookies.MergeSyncEvents(parts)
	}
	parties := make(map[string]struct{})
	channels := make(map[string]struct{})
	for _, s := range f.SyncEvents {
		parties[s.FromParty] = struct{}{}
		parties[s.ToParty] = struct{}{}
		if s.Channel != "" {
			channels[s.Channel] = struct{}{}
		}
	}
	f.SyncParties = len(parties)
	f.SyncChannels = len(channels)
	res.Cookies = f
}

// analyzeChildren reproduces the Section V-D5 case study.
func analyzeChildren(env *analysisEnv, res *Results) {
	byChannel := env.ix.PerChannelTracking
	f := ChildrenFindings{}
	isChild := make(map[string]bool)
	for _, name := range env.ix.Channels {
		if info := env.ds.ChannelInfo(name); info != nil && info.TargetsChildren() {
			isChild[name] = true
			f.Channels = append(f.Channels, name)
		}
	}
	sort.Strings(f.Channels)
	for name := range isChild {
		if cs := byChannel[name]; cs != nil {
			f.TrackingRequests += cs.TrackingRequests
		}
	}
	seen := make(map[[3]string]struct{})
	for _, e := range env.ix.SetEvents {
		if !isChild[e.Channel] || !e.ThirdParty {
			continue
		}
		if p, known := cookies.ClassifyPurpose(e.Name); known && p == cookies.PurposeTargeting {
			key := [3]string{e.Channel, e.Party, e.Name}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				f.TargetingCookies++
			}
		}
	}
	// MWU on per-channel tracker counts: children vs all others.
	var child, other []float64
	for _, name := range env.ix.Channels {
		n := 0.0
		if cs := byChannel[name]; cs != nil {
			n = float64(cs.TrackerCount())
		}
		if isChild[name] {
			child = append(child, n)
		} else {
			other = append(other, n)
		}
	}
	if mwu, err := stats.MannWhitney(child, other); err == nil {
		f.MWU = mwu
	}
	res.Children = f
}

// analyzeConsent reproduces Section VI.
func analyzeConsent(env *analysisEnv, res *Results) {
	ds := env.ds
	f := ConsentFindings{
		ChannelsWithPrivacy: consent.ChannelsWithPrivacyInfo(ds),
		Styles:              consent.NoticeInventory(ds),
		Pointers:            consent.Pointers(ds),
	}
	for _, run := range ds.Runs {
		f.TableIV = append(f.TableIV, consent.OverlayDistribution(run))
		f.TableV = append(f.TableV, consent.PrivacyPrevalence(run))
	}
	f.Nudging = consent.AnalyzeNudging(f.Styles)
	// Codebook validation on the first run's screenshot subset.
	if len(ds.Runs) > 0 && len(ds.Runs[0].Screenshots) > 0 {
		if ini, ref, err := consent.AgreementStudy(ds.Runs[0], 1); err == nil {
			f.AgreementInitial, f.AgreementRefined = ini, ref
		}
	}
	f.LocationAds = consent.FindLocationTargetedAds(ds, synth.MeasurementCity)
	res.Consent = f
}

// analyzePolicies reproduces Section VII. Corpus collection — HTML
// extraction, classification, and annotation per flow — dominates the
// section, so it runs as chunked policy.ScanFlows over the columnar rows,
// merged in row order into the identical corpus.
func analyzePolicies(env *analysisEnv, res *Results) {
	var corpus *policy.Corpus
	if cols := env.ix.Columns(); cols == nil {
		corpus = policy.Collect(env.ds)
	} else {
		n := cols.Rows()
		parts := make([]*policy.Partial, sectionChunks(n))
		if !env.scanChunks(n, func(chunk, lo, hi int) {
			parts[chunk] = policy.ScanFlows(cols.Flows,
				func(i int) store.RunName { return cols.RunName(i) }, lo, hi)
		}) {
			return
		}
		corpus = policy.MergePartials(parts)
	}
	f := PolicyFindings{
		Corpus:         corpus,
		RightsCoverage: policy.RightsCoverage(corpus.Texts()),
	}
	var windowDocs []*policy.Doc
	for _, d := range corpus.Unique {
		if policy.MentionsHbbTV(d.Text) {
			f.HbbTVMentions++
		}
		if policy.MentionsBlueButton(d.Text) {
			f.BlueButtonMentions++
		}
		if policy.MentionsTDDDG(d.Text) {
			f.TDDDGMentions++
		}
		if d.Practices[policy.PracticeThirdPartySharing] {
			f.ThirdPartyDeclaring++
		}
		if d.Practices[policy.PracticeBasisLegitInt] {
			f.LegitimateInterest++
		}
		if len(policy.CheckStatic(d.Practices)) > 0 {
			f.OptOutContradictions++
		}
		if policy.IsVague(d.Text) {
			f.VaguePolicies++
		}
		if w, ok := policy.ParseAdWindow(d.Text); ok {
			f.AdWindow = w
			f.AdWindowDeclared = true
			windowDocs = append(windowDocs, d)
		}
	}
	// The titular check: tracking outside the declared window on channels
	// covered by the window-declaring policy.
	var covered []string
	for _, d := range windowDocs {
		covered = append(covered, d.Channels...)
	}
	if f.AdWindowDeclared && len(covered) > 0 {
		f.WindowViolations = policy.CheckAdWindow(env.ds, covered, f.AdWindow, env.ix.IsTracking)
	}
	res.Policies = f
}

// analyzeStats reproduces the study's statistical tests. Every map-keyed
// grouping sorts its keys first: Kruskal-Wallis is mathematically
// order-invariant, but floating-point summation is not, so unsorted map
// iteration would make the reported H/p values drift across processes.
func analyzeStats(env *analysisEnv, res *Results) {
	f := StatFindings{}
	// Run -> per-channel request volume.
	var trafficGroups [][]float64
	var cookieGroups [][]float64
	for i, run := range env.ds.Runs {
		byChan := env.ix.Runs[i].FlowsByChannel
		var g []float64
		for _, ch := range sortedKeys(byChan) {
			g = append(g, float64(len(byChan[ch])))
		}
		trafficGroups = append(trafficGroups, g)
		perChanCookies := make(map[string]int)
		for _, e := range env.ix.Runs[i].SetEvents {
			perChanCookies[e.Channel]++
		}
		var cg []float64
		for _, ch := range run.Channels {
			cg = append(cg, float64(perChanCookies[ch.Name]))
		}
		cookieGroups = append(cookieGroups, cg)
	}
	if r, err := stats.KruskalWallis(trafficGroups...); err == nil {
		f.RunTraffic = r
	}
	if r, err := stats.KruskalWallis(cookieGroups...); err == nil {
		f.RunCookies = r
	}
	// Channel -> tracking requests, one observation per run.
	perChannelPerRun := make(map[string][]float64)
	for i, run := range env.ds.Runs {
		counts := env.ix.Runs[i].TrackingByChannel
		for _, ch := range run.Channels {
			perChannelPerRun[ch.Name] = append(perChannelPerRun[ch.Name], float64(counts[ch.Name]))
		}
	}
	var chanGroups [][]float64
	for _, ch := range sortedKeys(perChannelPerRun) {
		chanGroups = append(chanGroups, perChannelPerRun[ch])
	}
	if r, err := stats.KruskalWallis(chanGroups...); err == nil {
		f.ChannelTrackers = r
	}
	// Category -> per-channel tracking requests.
	catGroups := make(map[string][]float64)
	for _, name := range env.ix.Channels {
		info := env.ds.ChannelInfo(name)
		cat := "Other"
		if info != nil && info.PrimaryCategory() != "" {
			cat = string(info.PrimaryCategory())
		}
		n := 0.0
		if cs := env.ix.PerChannelTracking[name]; cs != nil {
			n = float64(cs.TrackingRequests)
		}
		catGroups[cat] = append(catGroups[cat], n)
	}
	var cgs [][]float64
	for _, cat := range sortedKeys(catGroups) {
		cgs = append(cgs, catGroups[cat])
	}
	if r, err := stats.KruskalWallis(cgs...); err == nil {
		f.CategoryTrackers = r
	}
	res.Stats = f
}

// analyzeExtension reproduces the future-work extension: filter rules
// derived from the observed traffic and the coverage gain they add over
// the Pi-hole base list. Both passes — evidence gathering and coverage
// evaluation — fold row chunks into order-independent accumulators
// (counts, kind bits), so the chunked merges equal the serial scans.
func analyzeExtension(env *analysisEnv, res *Results) {
	if env.ix.Columns() == nil {
		res.DerivedRules = tracking.DeriveRulesFromIndex(env.ix)
		if ext, err := tracking.EvaluateExtensionFromIndex(env.ix, res.DerivedRules); err == nil {
			res.Extension = ext
		}
		return
	}
	n := env.ix.FlowCount()
	fp := tracking.FirstPartySet(env.ix.FirstParty)
	evParts := make([]map[string]tracking.RuleEvidence, sectionChunks(n))
	if !env.scanChunks(n, func(chunk, lo, hi int) {
		evParts[chunk] = tracking.ScanRuleEvidence(env.ix, fp, lo, hi)
	}) {
		return
	}
	rules := tracking.RulesFromEvidence(tracking.MergeRuleEvidence(evParts))
	extended, err := tracking.ExtendedList(rules)
	if err != nil {
		res.DerivedRules = rules
		return
	}
	extParts := make([]tracking.ExtensionResult, sectionChunks(n))
	if !env.scanChunks(n, func(chunk, lo, hi int) {
		extParts[chunk] = tracking.EvaluateExtensionRange(env.ix, extended, lo, hi)
	}) {
		return
	}
	var ext tracking.ExtensionResult
	for _, p := range extParts {
		ext.Add(p)
	}
	res.DerivedRules = rules
	res.Extension = ext
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
