package hbbtvlab

import (
	"sort"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/consent"
	"github.com/hbbtvlab/hbbtvlab/internal/cookies"
	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/graphx"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// TableIRow is one row of Table I (per-run data overview).
type TableIRow struct {
	Run          store.RunName
	Date         time.Time
	Channels     int
	HTTPReq      int
	HTTPSReq     int
	HTTPSShare   float64
	Cookies      int
	FirstParty   int
	ThirdParty   int
	LocalStorage int
}

// Figure5 captures the long-tail distribution of cookie-using third
// parties (party -> number of channels it set cookies on).
type Figure5 struct {
	PartyChannels map[string]int
	// Top lists parties by descending channel count.
	Top []graphx.NodeDegree
	// PartiesOnMoreThan10 counts third parties used by >10 channels
	// (the paper found only 25).
	PartiesOnMoreThan10 int
	// SingleChannelParties counts third parties seen on exactly one
	// channel (the paper found 38).
	SingleChannelParties int
}

// Figure6 captures the distribution of trackers/tracking requests per
// channel.
type Figure6 struct {
	Requests stats.Desc // tracking requests per channel (paper: mean 1,132, max 59,499)
	Trackers stats.Desc // distinct trackers per channel (paper: mean 7.25, max 33)
	// Top10Share is the share of total tracking requests issued by the 10
	// channels with the most trackers (paper: 6.34%).
	Top10Share float64
	// PerChannel maps channel -> tracking request count, for plotting.
	PerChannel map[string]int
}

// Figure8 captures the ecosystem-graph metrics of Section V-E.
type Figure8 struct {
	Nodes              int
	Edges              int
	Components         int
	AvgPathLength      float64
	MeanNeighborDegree float64
	DegreeMean         float64
	DegreeSD           float64
	TopNodes           []graphx.NodeDegree
	NodesWith10Edges   int
	SingleEdgeDomains  int
	XitiDegree         int
	TVPingDegree       int
}

// CookieFindings aggregates the Section V-C results.
type CookieFindings struct {
	DistinctCookies int
	ClassifiedShare float64 // Cookiepedia-style coverage (paper: 20.5%)
	// Purposes is the per-run purpose distribution (supplementary table);
	// color-button runs classify better and skew towards Targeting.
	Purposes           []PurposeRow
	TargetingShare     float64 // share of classified cookies that are Targeting
	SetByTrackingShare float64 // cookies set by tracking-labeled requests (paper: 92%)
	PotentialIDs       int     // values passing the ID heuristic (paper: 14,236)
	SyncEvents         []cookies.SyncEvent
	SyncParties        int // distinct minting parties involved (paper: 2)
	SyncChannels       int // channels with syncing observed (paper: 20)
}

// PurposeRow re-exports the per-run cookie purpose distribution.
type PurposeRow = cookies.PurposeDistribution

// LeakFindings aggregates Section V-B.
type LeakFindings = tracking.LeakSummary

// ChildrenFindings is the Section V-D5 case study.
type ChildrenFindings struct {
	Channels         []string
	TrackingRequests int
	TargetingCookies int
	// MWU compares children's channels to all others on tracker counts;
	// the paper found no significant difference (p > 0.3).
	MWU stats.MannWhitneyResult
}

// ConsentFindings aggregates Section VI.
type ConsentFindings struct {
	TableIV             []consent.OverlayRow
	TableV              []consent.PrevalenceRow
	ChannelsWithPrivacy int
	Styles              []consent.StyleSummary
	Nudging             consent.NudgeFindings
	Pointers            consent.PointerStats
	// AgreementInitial/AgreementRefined reproduce the two-annotator
	// codebook validation (Cohen's kappa before and after refinement).
	AgreementInitial consent.AgreementResult
	AgreementRefined consent.AgreementResult
	// LocationAds are overlays naming the measurement city in ad copy
	// (Section VI "Other Observations").
	LocationAds []consent.LocationTargetedAd
}

// PolicyFindings aggregates Section VII.
type PolicyFindings struct {
	Corpus *policy.Corpus
	// HbbTVMentions counts unique policies mentioning "HbbTV" (paper: 72%).
	HbbTVMentions int
	// BlueButtonMentions counts policies pointing to blue-button settings
	// (paper: 8).
	BlueButtonMentions int
	// TDDDGMentions counts policies referencing the TTDSG/TDDDG (paper: 1).
	TDDDGMentions int
	// ThirdPartyDeclaring counts policies declaring third-party sharing
	// (paper: 52% of German policies).
	ThirdPartyDeclaring int
	// LegitimateInterest counts policies invoking legitimate interests
	// (paper: 10).
	LegitimateInterest int
	// RightsCoverage counts policies declaring each data-subject right.
	RightsCoverage map[policy.GDPRArticle]int
	// OptOutContradictions counts policies framing targeted ads as opt-out.
	OptOutContradictions int
	// VaguePolicies counts policies whose hedging density crosses the
	// vagueness threshold (the Sachsen Eins case).
	VaguePolicies int
	// AdWindow is the declared children's-group profiling window.
	AdWindow policy.AdWindow
	// AdWindowDeclared reports whether any policy declared such a window.
	AdWindowDeclared bool
	// WindowViolations are tracking requests outside the declared window
	// on channels covered by that policy.
	WindowViolations []policy.WindowViolation
}

// StatFindings holds the study's statistical tests.
type StatFindings struct {
	RunTraffic       stats.KruskalWallisResult // run -> per-channel request volume
	RunCookies       stats.KruskalWallisResult // run -> per-channel cookies set
	ChannelTrackers  stats.KruskalWallisResult // channel -> tracking requests (per run)
	CategoryTrackers stats.KruskalWallisResult // category -> tracking requests
}

// Results bundles every reproduced table, figure, and finding.
type Results struct {
	TableI   []TableIRow
	TableII  []cookies.ThirdPartyUsage
	TableIII []tracking.RunListStats
	Fig5     Figure5
	Fig6     Figure6
	Fig7     []tracking.CategoryStats
	Fig8     Figure8

	FirstParties map[string]string
	Leaks        LeakFindings
	Cookies      CookieFindings
	Children     ChildrenFindings
	Consent      ConsentFindings
	Policies     PolicyFindings
	Stats        StatFindings

	// SmartTVLists reports the smart-TV block-list comparison of V-D:
	// requests blocked by Pi-hole vs Perflyst vs Kamran.
	SmartTVLists map[string]int

	// DerivedRules implements the paper's future-work proposal: filter
	// rules automatically derived from the observed traffic, with the
	// coverage improvement over the Pi-hole base list.
	DerivedRules []tracking.DerivedRule
	Extension    tracking.ExtensionResult
}

// Analyze runs the complete Section V/VI/VII analysis suite over a dataset.
func Analyze(ds *store.Dataset) *Results {
	res := &Results{}
	cls := tracking.NewClassifier()

	// First-party identification (Section V-A) with the filter-list
	// correction.
	res.FirstParties = tracking.FirstParties(ds.Runs, cls.EasyList)

	windowStart, windowEnd := measurementWindow(ds)

	// Table I.
	var allEvents []cookies.SetEvent
	for _, run := range ds.Runs {
		events := cookies.SetEvents(run, res.FirstParties)
		allEvents = append(allEvents, events...)
		plain, https := run.CountHTTPS()
		first, third := cookies.FirstThirdCounts(events)
		localStorage := len(run.Storage)
		res.TableI = append(res.TableI, TableIRow{
			Run: run.Name, Date: run.Date,
			Channels: len(run.Channels),
			HTTPReq:  plain, HTTPSReq: https,
			HTTPSShare:   run.HTTPSShare(),
			Cookies:      len(run.Cookies),
			FirstParty:   first,
			ThirdParty:   third,
			LocalStorage: localStorage,
		})
	}

	// Table II.
	for _, run := range ds.Runs {
		res.TableII = append(res.TableII,
			cookies.AnalyzeThirdParty(run.Name, allEvents))
	}

	// Table III + smart-TV list comparison.
	for _, run := range ds.Runs {
		res.TableIII = append(res.TableIII, cls.ListStats(run))
	}
	res.SmartTVLists = smartTVComparison(ds)

	// Figure 5.
	res.Fig5 = figure5(allEvents)

	// Figures 6 and 7.
	byChannel := cls.PerChannel(ds.Runs)
	res.Fig6 = figure6(byChannel)
	res.Fig7 = tracking.PerCategory(byChannel, ds, 10)

	// Figure 8.
	g := graphx.FromDataset(ds, res.FirstParties)
	res.Fig8 = figure8(g)

	// Section V-B leakage.
	leaks := tracking.FindLeaks(ds, res.FirstParties, tracking.LGNeedles)
	res.Leaks = tracking.Summarize(leaks, res.FirstParties)

	// Section V-C cookies.
	res.Cookies = cookieFindings(ds, cls, allEvents, windowStart, windowEnd)

	// Section V-D5 children.
	res.Children = childrenFindings(ds, cls, byChannel, allEvents)

	// Section VI consent.
	res.Consent = consentFindings(ds)

	// Section VII policies.
	res.Policies = policyFindings(ds, cls)

	// Statistical tests.
	res.Stats = statFindings(ds, cls, allEvents)

	// Future-work extension: derive HbbTV filter rules from the traffic
	// and measure the coverage gain over the Pi-hole base list.
	res.DerivedRules = cls.DeriveFilterRules(ds, res.FirstParties, cls.PiHole)
	if ext, err := cls.EvaluateExtension(ds, cls.PiHole, res.DerivedRules); err == nil {
		res.Extension = ext
	}

	return res
}

func measurementWindow(ds *store.Dataset) (time.Time, time.Time) {
	var lo, hi time.Time
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			if lo.IsZero() || f.Time.Before(lo) {
				lo = f.Time
			}
			if f.Time.After(hi) {
				hi = f.Time
			}
		}
	}
	if lo.IsZero() {
		lo = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
		hi = time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	}
	return lo, hi
}

func smartTVComparison(ds *store.Dataset) map[string]int {
	lists := []*filterlist.List{
		filterlist.PiHole(), filterlist.PerflystSmartTV(), filterlist.KamranSmartTV(),
	}
	out := make(map[string]int, len(lists))
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			u := f.URL.String()
			for _, l := range lists {
				if l.MatchURL(u) {
					out[l.Name()]++
				}
			}
		}
	}
	return out
}

func figure5(events []cookies.SetEvent) Figure5 {
	counts := cookies.PartyChannelCounts(events)
	f := Figure5{PartyChannels: counts}
	for p, n := range counts {
		f.Top = append(f.Top, graphx.NodeDegree{Node: p, Degree: n})
		if n > 10 {
			f.PartiesOnMoreThan10++
		}
		if n == 1 {
			f.SingleChannelParties++
		}
	}
	sort.Slice(f.Top, func(a, b int) bool {
		if f.Top[a].Degree != f.Top[b].Degree {
			return f.Top[a].Degree > f.Top[b].Degree
		}
		return f.Top[a].Node < f.Top[b].Node
	})
	return f
}

func figure6(byChannel map[string]*tracking.ChannelStats) Figure6 {
	f := Figure6{PerChannel: make(map[string]int, len(byChannel))}
	var reqs, trackers []float64
	type chReq struct {
		channel  string
		trackers int
		requests int
	}
	var rows []chReq
	total := 0
	for ch, cs := range byChannel {
		rows = append(rows, chReq{channel: ch, trackers: cs.TrackerCount(), requests: cs.TrackingRequests})
		f.PerChannel[ch] = cs.TrackingRequests
		total += cs.TrackingRequests
	}
	// Deterministic order: rank by trackers, break ties by requests, then
	// name (the top-10 cut must not depend on map iteration order).
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].trackers != rows[b].trackers {
			return rows[a].trackers > rows[b].trackers
		}
		if rows[a].requests != rows[b].requests {
			return rows[a].requests > rows[b].requests
		}
		return rows[a].channel < rows[b].channel
	})
	for _, r := range rows {
		reqs = append(reqs, float64(r.requests))
		trackers = append(trackers, float64(r.trackers))
	}
	f.Requests = stats.Describe(reqs)
	f.Trackers = stats.Describe(trackers)
	top10 := 0
	for i := 0; i < len(rows) && i < 10; i++ {
		top10 += rows[i].requests
	}
	if total > 0 {
		f.Top10Share = float64(top10) / float64(total)
	}
	return f
}

func figure8(g *graphx.Graph) Figure8 {
	mean, sd := g.DegreeStats()
	f := Figure8{
		Nodes:              g.NodeCount(),
		Edges:              g.EdgeCount(),
		Components:         len(g.Components()),
		AvgPathLength:      g.AveragePathLength(),
		MeanNeighborDegree: g.MeanNeighborDegree(),
		DegreeMean:         mean,
		DegreeSD:           sd,
		TopNodes:           topDomains(g, 3),
		NodesWith10Edges:   g.CountDegreeAtLeast(10),
		XitiDegree:         g.Degree("xiti.com"),
		TVPingDegree:       g.Degree("tvping.com"),
	}
	for node, deg := range g.Degrees() {
		if deg == 1 && g.Kind(node) == graphx.NodeDomain {
			f.SingleEdgeDomains++
		}
	}
	return f
}

// topDomains ranks domain (non-channel) nodes by degree.
func topDomains(g *graphx.Graph, n int) []graphx.NodeDegree {
	var all []graphx.NodeDegree
	for node, deg := range g.Degrees() {
		if g.Kind(node) == graphx.NodeDomain {
			all = append(all, graphx.NodeDegree{Node: node, Degree: deg})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Degree != all[b].Degree {
			return all[a].Degree > all[b].Degree
		}
		return all[a].Node < all[b].Node
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

func cookieFindings(ds *store.Dataset, cls *tracking.Classifier, events []cookies.SetEvent, lo, hi time.Time) CookieFindings {
	f := CookieFindings{
		DistinctCookies: cookies.DistinctCookies(events),
		PotentialIDs:    cookies.PotentialIDs(events, lo, hi),
	}
	classified, targeting := 0, 0
	distinct := make(map[[2]string]struct{})
	for _, e := range events {
		key := [2]string{e.Party, e.Name}
		if _, dup := distinct[key]; dup {
			continue
		}
		distinct[key] = struct{}{}
		if purpose, known := cookies.ClassifyPurpose(e.Name); known {
			classified++
			if purpose == cookies.PurposeTargeting {
				targeting++
			}
		}
	}
	if len(distinct) > 0 {
		f.ClassifiedShare = float64(classified) / float64(len(distinct))
	}
	if classified > 0 {
		f.TargetingShare = float64(targeting) / float64(classified)
	}
	// Share of Set-Cookie responses arriving on tracking-labeled requests.
	setTotal, setTracking := 0, 0
	for _, run := range ds.Runs {
		for _, flow := range run.Flows {
			if len(flow.SetCookies()) == 0 {
				continue
			}
			setTotal++
			if cls.IsTracking(flow) {
				setTracking++
			}
		}
	}
	if setTotal > 0 {
		f.SetByTrackingShare = float64(setTracking) / float64(setTotal)
	}
	for _, run := range ds.Runs {
		f.Purposes = append(f.Purposes, cookies.AnalyzePurposes(run.Name, events))
	}
	// Cookie syncing.
	f.SyncEvents = cookies.DetectSyncing(ds.Runs, events, lo, hi)
	parties := make(map[string]struct{})
	channels := make(map[string]struct{})
	for _, s := range f.SyncEvents {
		parties[s.FromParty] = struct{}{}
		parties[s.ToParty] = struct{}{}
		if s.Channel != "" {
			channels[s.Channel] = struct{}{}
		}
	}
	f.SyncParties = len(parties)
	f.SyncChannels = len(channels)
	return f
}

func childrenFindings(ds *store.Dataset, cls *tracking.Classifier, byChannel map[string]*tracking.ChannelStats, events []cookies.SetEvent) ChildrenFindings {
	f := ChildrenFindings{}
	isChild := make(map[string]bool)
	for _, name := range ds.ChannelNames() {
		if info := ds.ChannelInfo(name); info != nil && info.TargetsChildren() {
			isChild[name] = true
			f.Channels = append(f.Channels, name)
		}
	}
	sort.Strings(f.Channels)
	for name := range isChild {
		if cs := byChannel[name]; cs != nil {
			f.TrackingRequests += cs.TrackingRequests
		}
	}
	seen := make(map[[3]string]struct{})
	for _, e := range events {
		if !isChild[e.Channel] || !e.ThirdParty {
			continue
		}
		if p, known := cookies.ClassifyPurpose(e.Name); known && p == cookies.PurposeTargeting {
			key := [3]string{e.Channel, e.Party, e.Name}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				f.TargetingCookies++
			}
		}
	}
	// MWU on per-channel tracker counts: children vs all others.
	var child, other []float64
	for _, name := range ds.ChannelNames() {
		n := 0.0
		if cs := byChannel[name]; cs != nil {
			n = float64(cs.TrackerCount())
		}
		if isChild[name] {
			child = append(child, n)
		} else {
			other = append(other, n)
		}
	}
	if mwu, err := stats.MannWhitney(child, other); err == nil {
		f.MWU = mwu
	}
	return f
}

func consentFindings(ds *store.Dataset) ConsentFindings {
	f := ConsentFindings{
		ChannelsWithPrivacy: consent.ChannelsWithPrivacyInfo(ds),
		Styles:              consent.NoticeInventory(ds),
		Pointers:            consent.Pointers(ds),
	}
	for _, run := range ds.Runs {
		f.TableIV = append(f.TableIV, consent.OverlayDistribution(run))
		f.TableV = append(f.TableV, consent.PrivacyPrevalence(run))
	}
	f.Nudging = consent.AnalyzeNudging(f.Styles)
	// Codebook validation on the first run's screenshot subset.
	if len(ds.Runs) > 0 && len(ds.Runs[0].Screenshots) > 0 {
		if ini, ref, err := consent.AgreementStudy(ds.Runs[0], 1); err == nil {
			f.AgreementInitial, f.AgreementRefined = ini, ref
		}
	}
	f.LocationAds = consent.FindLocationTargetedAds(ds, synth.MeasurementCity)
	return f
}

func policyFindings(ds *store.Dataset, cls *tracking.Classifier) PolicyFindings {
	corpus := policy.Collect(ds)
	f := PolicyFindings{
		Corpus:         corpus,
		RightsCoverage: policy.RightsCoverage(corpus.Texts()),
	}
	var windowDocs []*policy.Doc
	for _, d := range corpus.Unique {
		if policy.MentionsHbbTV(d.Text) {
			f.HbbTVMentions++
		}
		if policy.MentionsBlueButton(d.Text) {
			f.BlueButtonMentions++
		}
		if policy.MentionsTDDDG(d.Text) {
			f.TDDDGMentions++
		}
		if d.Practices[policy.PracticeThirdPartySharing] {
			f.ThirdPartyDeclaring++
		}
		if d.Practices[policy.PracticeBasisLegitInt] {
			f.LegitimateInterest++
		}
		if len(policy.CheckStatic(d.Practices)) > 0 {
			f.OptOutContradictions++
		}
		if policy.IsVague(d.Text) {
			f.VaguePolicies++
		}
		if w, ok := policy.ParseAdWindow(d.Text); ok {
			f.AdWindow = w
			f.AdWindowDeclared = true
			windowDocs = append(windowDocs, d)
		}
	}
	// The titular check: tracking outside the declared window on channels
	// covered by the window-declaring policy.
	var covered []string
	for _, d := range windowDocs {
		covered = append(covered, d.Channels...)
	}
	if f.AdWindowDeclared && len(covered) > 0 {
		f.WindowViolations = policy.CheckAdWindow(ds, covered, f.AdWindow, cls.IsTracking)
	}
	return f
}

func statFindings(ds *store.Dataset, cls *tracking.Classifier, events []cookies.SetEvent) StatFindings {
	f := StatFindings{}
	// Run -> per-channel request volume.
	var trafficGroups [][]float64
	var cookieGroups [][]float64
	for _, run := range ds.Runs {
		byChan := run.FlowsByChannel()
		var g []float64
		for _, flows := range byChan {
			g = append(g, float64(len(flows)))
		}
		trafficGroups = append(trafficGroups, g)
		perChanCookies := make(map[string]int)
		for _, e := range events {
			if e.Run == run.Name {
				perChanCookies[e.Channel]++
			}
		}
		var cg []float64
		for _, ch := range run.Channels {
			cg = append(cg, float64(perChanCookies[ch.Name]))
		}
		cookieGroups = append(cookieGroups, cg)
	}
	if r, err := stats.KruskalWallis(trafficGroups...); err == nil {
		f.RunTraffic = r
	}
	if r, err := stats.KruskalWallis(cookieGroups...); err == nil {
		f.RunCookies = r
	}
	// Channel -> tracking requests, one observation per run.
	perChannelPerRun := make(map[string][]float64)
	for _, run := range ds.Runs {
		counts := make(map[string]int)
		for _, flow := range run.Flows {
			if flow.Channel != "" && cls.IsTracking(flow) {
				counts[flow.Channel]++
			}
		}
		for _, ch := range run.Channels {
			perChannelPerRun[ch.Name] = append(perChannelPerRun[ch.Name], float64(counts[ch.Name]))
		}
	}
	var chanGroups [][]float64
	for _, obs := range perChannelPerRun {
		chanGroups = append(chanGroups, obs)
	}
	if r, err := stats.KruskalWallis(chanGroups...); err == nil {
		f.ChannelTrackers = r
	}
	// Category -> per-channel tracking requests.
	catGroups := make(map[string][]float64)
	byChannel := cls.PerChannel(ds.Runs)
	for _, name := range ds.ChannelNames() {
		info := ds.ChannelInfo(name)
		cat := "Other"
		if info != nil && info.PrimaryCategory() != "" {
			cat = string(info.PrimaryCategory())
		}
		n := 0.0
		if cs := byChannel[name]; cs != nil {
			n = float64(cs.TrackingRequests)
		}
		catGroups[cat] = append(catGroups[cat], n)
	}
	var cgs [][]float64
	for _, g := range catGroups {
		cgs = append(cgs, g)
	}
	if r, err := stats.KruskalWallis(cgs...); err == nil {
		f.CategoryTrackers = r
	}
	return f
}
