GO ?= go

.PHONY: build test check race chaos resume fuzz bench fmt lint bench-json bench-analyze bench-measure bench-merge bench-span benchgate fleet trace

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the tier-1 gate: vet plus the full suite under the race
# detector. The sharded measurement engine (internal/core.Pool) runs its
# concurrency tests here, so any shared-state regression between shards
# fails the build; the telemetry stress test exercises the lock-free
# shard-local aggregation the same way.
check: build
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/ ./internal/webos/ ./internal/proxy/ ./internal/telemetry/

# chaos runs the fault-injection suite under the race detector: a scaled
# study executed under deterministic faults must produce a byte-identical
# dataset for every worker count, record per-channel outcomes, keep its
# telemetry counters worker-invariant, and stay analyzable when degraded.
# The resilience unit tests (retry, quarantine, deadline, fault transport)
# ride along.
chaos:
	$(GO) test -race -run 'TestChaos' -v .
	$(GO) test -race ./internal/faults/ ./internal/hostnet/
	$(GO) test -race -run 'TestRunContinues|TestQuarantine|TestSuccessResets|TestProbeFailure|TestDegradedOnly|TestRetryPolicy|TestVisitDeadline|TestPoolCancellation' ./internal/core/

# resume runs the crash-safety suite under the race detector: the
# checkpoint/journal format's torn-file contract (cut at every byte,
# corrupt every section boundary), the in-process kill simulation
# (journals truncated at seed-derived offsets must resume to digest
# parity for every worker count, quarantine state included), and the
# child-process chaos tests (hbbtv-measure SIGKILL'd mid-campaign and
# resumed, fleet shards killed and merged, SIGINT exiting 3 with flushed
# telemetry sinks). Kill points are seed-derived and logged, so a red
# run names the exact (seed, size) pair to replay.
resume:
	$(GO) test -race -run 'TestCheckpoint|TestJournal' -v ./internal/store/
	$(GO) test -race -run 'TestResume|TestChaosProcessKillResumeParity|TestChaosFleetKillResumeMerge|TestChaosResumeMismatchRejectedCLI|TestChaosInterruptGracefulExit' -v .

# Short fuzzing pass over the binary AIT decoder (seeded corpus).
fuzz:
	$(GO) test ./internal/dvb/ -run '^$$' -fuzz FuzzParseAIT -fuzztime 30s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# fmt rewrites the tree in place; lint is the read-only CI gate
# (vet + a gofmt diff that fails when any file needs formatting).
fmt:
	gofmt -l -w .

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# bench-json runs the paper-scale benchmark suite with machine-readable
# (test2json) output for the CI artifact trail (BENCH_*.json trajectory).
bench-json:
	$(GO) test -json -bench . -benchtime 1x -run '^$$' . | tee bench.json

# bench-analyze runs the analysis-engine benchmarks only — serial vs
# parallel AnalyzeContext at paper scale (ns/op per -j, byte-identity
# asserted) plus the single-pass-vs-multipass comparison — records the
# test2json stream as BENCH_analyze.json for the CI artifact trail, and
# gates on the committed scaling floors (BENCH_floor.json): j=8 must hit
# its speedup-vs-serial target, clamped by the runner's gomaxprocs.
bench-analyze:
	$(GO) test -json -bench 'BenchmarkAnalyze' -benchtime 1x -run '^$$' . | tee BENCH_analyze.json
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_analyze.json -floor BENCH_floor.json -match 'BenchmarkAnalyze'

# bench-measure runs the measurement-engine throughput benchmark —
# ExecuteRuns at paper scale for j=1 and j=8, digest identity asserted
# across worker counts — records the test2json stream as
# BENCH_measure.json for the CI artifact trail, and gates on the committed
# flows/s floor (BENCH_floor.json), clamped by the runner's gomaxprocs.
bench-measure:
	$(GO) test -json -bench 'BenchmarkMeasureThroughput' -benchtime 1x -run '^$$' . | tee BENCH_measure.json
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_measure.json -floor BENCH_floor.json -match 'BenchmarkMeasureThroughput'

# bench-merge runs the fleet-merge throughput benchmark — a 4-shard
# paper-scale fleet recombined by store.MergeShards — records the
# test2json stream as BENCH_merge.json for the CI artifact trail, and
# gates on the committed merged-flows/s floor (BENCH_floor.json).
bench-merge:
	$(GO) test -json -bench 'BenchmarkMergeShards' -benchtime 1x -run '^$$' . | tee BENCH_merge.json
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_merge.json -floor BENCH_floor.json -match 'BenchmarkMergeShards'

# bench-span runs the tracer hot-path benchmark — one StartSpan/End pair
# per op, allocation-pinned in the benchmark itself — records the
# test2json stream as BENCH_span.json, and gates on the committed spans/s
# floor (BENCH_floor.json).
bench-span:
	$(GO) test -json -bench 'BenchmarkSpanOverhead' -benchtime 1x -run '^$$' . | tee BENCH_span.json
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_span.json -floor BENCH_floor.json -match 'BenchmarkSpanOverhead'

# benchgate re-checks already recorded BENCH_*.json streams against the
# committed floors without re-running the (slow) paper-scale benchmarks.
benchgate:
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_analyze.json -floor BENCH_floor.json -match 'BenchmarkAnalyze'
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_measure.json -floor BENCH_floor.json -match 'BenchmarkMeasureThroughput'
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_merge.json -floor BENCH_floor.json -match 'BenchmarkMergeShards'
	$(GO) run ./cmd/hbbtv-benchgate -bench BENCH_span.json -floor BENCH_floor.json -match 'BenchmarkSpanOverhead'

# fleet is the end-to-end topology demo and gate: build the tools, run a
# 4-way fleet campaign as real collector processes, merge the shard
# snapshots, and verify the merged digest against the single-process run
# of the same study. Also exercised (plus chaos variants) by
# TestFleetChildProcesses in the default test suite.
fleet: build
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o $$dir/hbbtv-measure ./cmd/hbbtv-measure && \
	$(GO) build -o $$dir/hbbtv-merge ./cmd/hbbtv-merge && \
	echo "== single-process reference ==" && \
	$$dir/hbbtv-measure -seed 321 -scale 0.05 -j 4 -shards 4 -snapshot $$dir/single.snap && \
	for i in 0 1 2 3; do \
		echo "== shard $$i/4 =="; \
		$$dir/hbbtv-measure -seed 321 -scale 0.05 -shard $$i/4 -snapshot $$dir/shard$$i.snap || exit 1; \
	done && \
	echo "== merge ==" && \
	$$dir/hbbtv-merge -verify $$dir/single.snap $$dir/shard0.snap $$dir/shard1.snap $$dir/shard2.snap $$dir/shard3.snap

# trace is the observability demo and gate: measure a small instrumented
# campaign, summarize its span trace with hbbtv-trace, and export the
# Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
trace: build
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) build -o $$dir/hbbtv-measure ./cmd/hbbtv-measure && \
	$(GO) build -o $$dir/hbbtv-trace ./cmd/hbbtv-trace && \
	echo "== instrumented campaign ==" && \
	$$dir/hbbtv-measure -seed 321 -scale 0.05 -j 4 -telemetry -snapshot $$dir/campaign.snap && \
	echo "== span trace summary ==" && \
	$$dir/hbbtv-trace -chrome $$dir/trace.json $$dir/campaign.snap && \
	echo "== chrome export: $$(wc -c < $$dir/trace.json) bytes of trace-event JSON =="
