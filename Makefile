GO ?= go

.PHONY: build test check race fuzz bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check is the tier-1 gate: vet plus the full suite under the race
# detector. The sharded measurement engine (internal/core.Pool) runs its
# concurrency tests here, so any shared-state regression between shards
# fails the build.
check: build
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/ ./internal/webos/ ./internal/proxy/

# Short fuzzing pass over the binary AIT decoder (seeded corpus).
fuzz:
	$(GO) test ./internal/dvb/ -run '^$$' -fuzz FuzzParseAIT -fuzztime 30s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
