package hbbtvlab

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
)

// testStudy runs a small end-to-end study once and shares it across tests
// (the pipeline is deterministic for a fixed seed).
var (
	testResults *Results
	testDataset *store.Dataset
	testFunnel  *core.FunnelReport
	testWorld   *synth.World
)

func TestMain(m *testing.M) {
	study := NewStudy(Options{Seed: 2023, Scale: 0.12, ProbeWatch: 30 * time.Second})
	funnel, err := study.SelectChannels()
	if err != nil {
		panic(err)
	}
	ds, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	testWorld = study.World
	testFunnel = funnel
	testDataset = ds
	testResults = Analyze(ds)
	m.Run()
}

func TestStudyFunnelEndpoints(t *testing.T) {
	if testFunnel.FinalCount() != len(testWorld.Channels) {
		t.Errorf("funnel final = %d, want %d", testFunnel.FinalCount(), len(testWorld.Channels))
	}
	if testFunnel.IPTV != 1 {
		t.Errorf("IPTV filtered = %d", testFunnel.IPTV)
	}
}

func TestStudyFiveRuns(t *testing.T) {
	if len(testDataset.Runs) != 5 {
		t.Fatalf("runs = %d", len(testDataset.Runs))
	}
	for _, name := range store.AllRuns {
		run := testDataset.Run(name)
		if run == nil {
			t.Fatalf("missing run %s", name)
		}
		if len(run.Flows) == 0 {
			t.Errorf("%s: no flows", name)
		}
		if len(run.Screenshots) == 0 {
			t.Errorf("%s: no screenshots", name)
		}
	}
}

func TestRunOrderingMatchesPaper(t *testing.T) {
	// Red is the heaviest run (the outlier lives there); Green the
	// lightest (fewest channels on air).
	byRun := map[store.RunName]int{}
	for _, row := range testResults.TableI {
		byRun[row.Run] = row.HTTPReq + row.HTTPSReq
	}
	if byRun[store.RunRed] <= byRun[store.RunGreen] {
		t.Errorf("Red (%d) should far exceed Green (%d)", byRun[store.RunRed], byRun[store.RunGreen])
	}
	if byRun[store.RunGeneral] == 0 || byRun[store.RunBlue] == 0 {
		t.Error("General/Blue runs empty")
	}
}

func TestHTTPSShareIsMarginal(t *testing.T) {
	// The ecosystem is overwhelmingly plain HTTP (0.6%-7.5% per run).
	for _, row := range testResults.TableI {
		if row.HTTPSShare > 0.15 {
			t.Errorf("%s: HTTPS share %.1f%% implausibly high", row.Run, row.HTTPSShare*100)
		}
	}
}

func TestTVPingDominatesPixels(t *testing.T) {
	// The top cookie-using third parties are the audience-measurement
	// services: xiti-style analytics (the paper's most frequent third
	// party), its platform intermediary, and the dominant pixel host —
	// which no Web filter list covers.
	top := testResults.Fig5.Top
	if len(top) < 3 {
		t.Fatalf("too few cookie-using parties: %v", top)
	}
	lead := map[string]bool{}
	for _, nd := range top[:3] {
		lead[nd.Node] = true
	}
	if !lead["tvping.com"] || !(lead["xiti.com"] || lead["tvstat.net"]) {
		t.Fatalf("top cookie-using third parties = %v, want tvping + xiti/tvstat leading", top[:3])
	}
	for _, l := range []*filterlist.List{
		filterlist.EasyList(), filterlist.EasyPrivacy(), filterlist.PiHole(),
	} {
		if l.MatchURL("http://ch1.tvping.com/t?c=1") {
			t.Errorf("%s unexpectedly covers the dominant HbbTV tracker", l.Name())
		}
	}
}

func TestFilterListsMissMostTracking(t *testing.T) {
	// Section V-D: filter lists flag well under 5% of requests, while the
	// pixel heuristic finds the bulk of tracking.
	var total, listed, pixels int
	for _, row := range testResults.TableI {
		total += row.HTTPReq + row.HTTPSReq
	}
	for _, r := range testResults.TableIII {
		listed += r.OnPiHole
		pixels += r.TrackingPxl
	}
	if total == 0 {
		t.Fatal("no traffic")
	}
	if share := float64(listed) / float64(total); share > 0.05 {
		t.Errorf("Pi-hole flags %.1f%% of requests; the paper's point is <2%%", share*100)
	}
	if share := float64(pixels) / float64(total); share < 0.3 {
		t.Errorf("pixels are %.1f%% of traffic; paper ~60%%", share*100)
	}
}

func TestSmartTVListOrdering(t *testing.T) {
	// Pi-hole > Perflyst > Kamran, as in Section V-D.
	m := testResults.SmartTVLists
	if !(m["Pi-hole"] >= m["Perflyst"] && m["Perflyst"] >= m["Kamran"]) {
		t.Errorf("smart-TV list ordering broken: %v", m)
	}
}

func TestEcosystemGraphShape(t *testing.T) {
	f8 := testResults.Fig8
	if f8.Components != 1 {
		t.Errorf("graph has %d components, want 1", f8.Components)
	}
	if f8.AvgPathLength < 2 || f8.AvgPathLength > 4.5 {
		t.Errorf("average path length %.2f outside the plausible band around 2.91", f8.AvgPathLength)
	}
	// The three hubs.
	hubs := map[string]bool{}
	for _, nd := range f8.TopNodes {
		hubs[nd.Node] = true
	}
	for _, want := range []string{"ard.de", "redbutton.de", "rtl-hbbtv.de"} {
		if !hubs[want] {
			t.Errorf("hub %s missing from top nodes %v", want, f8.TopNodes)
		}
	}
	// xiti: most frequent third party, few graph edges (included by
	// platforms, not channels).
	if f8.XitiDegree > 10 {
		t.Errorf("xiti degree = %d; should be small (paper: 6)", f8.XitiDegree)
	}
	// Hub-dominated: mean neighbor degree far exceeds mean degree.
	if f8.MeanNeighborDegree < 2*f8.DegreeMean {
		t.Errorf("mean neighbor degree %.1f vs degree mean %.1f: not hub-dominated",
			f8.MeanNeighborDegree, f8.DegreeMean)
	}
}

func TestFirstPartiesAreOperatorPlatforms(t *testing.T) {
	for ch, fp := range testResults.FirstParties {
		c := testWorld.ChannelByName(ch)
		if c == nil {
			continue
		}
		if fp != c.Group.FirstParty {
			t.Errorf("%s: first party %q, want %q", ch, fp, c.Group.FirstParty)
		}
	}
}

func TestLeakageDetected(t *testing.T) {
	l := testResults.Leaks
	if l.TechnicalChannels == 0 || l.TechnicalParties == 0 {
		t.Errorf("no technical leakage found: %+v", l)
	}
	if l.BehavioralChannels == 0 {
		t.Errorf("no behavioral leakage found: %+v", l)
	}
}

func TestCookieFindings(t *testing.T) {
	ck := testResults.Cookies
	if ck.DistinctCookies == 0 {
		t.Fatal("no cookies observed")
	}
	// Coverage far below the Web's 57%.
	if ck.ClassifiedShare > 0.45 {
		t.Errorf("classified share %.0f%%: HbbTV coverage should be low", ck.ClassifiedShare*100)
	}
	if ck.SetByTrackingShare < 0.5 {
		t.Errorf("only %.0f%% of cookies set by tracking requests; paper 92%%", ck.SetByTrackingShare*100)
	}
	if ck.PotentialIDs == 0 {
		t.Error("no potential ID values found")
	}
	// Syncing: the two-domain pair.
	if len(ck.SyncEvents) == 0 {
		t.Fatal("no cookie syncing detected")
	}
	for _, s := range ck.SyncEvents {
		if s.FromParty != "adsync-a.com" || s.ToParty != "adsync-b.com" {
			t.Errorf("unexpected sync pair %s -> %s", s.FromParty, s.ToParty)
		}
	}
	if ck.SyncParties != 2 {
		t.Errorf("sync parties = %d, want 2", ck.SyncParties)
	}
}

func TestChildrenTrackedLikeOthers(t *testing.T) {
	c := testResults.Children
	if len(c.Channels) == 0 {
		t.Fatal("no children's channels in the world")
	}
	if c.TrackingRequests == 0 {
		t.Error("children's channels show no tracking; the paper found plenty")
	}
	// No significant difference at alpha = 0.01 (paper: p > 0.3).
	if c.MWU.Significant(0.01) {
		t.Errorf("children vs others significantly different (p = %v)", c.MWU.P)
	}
}

func TestConsentFindings(t *testing.T) {
	cn := testResults.Consent
	if cn.ChannelsWithPrivacy == 0 {
		t.Fatal("no channels with privacy information")
	}
	if len(cn.Styles) == 0 {
		t.Fatal("no notice stylings observed")
	}
	// The universal dark pattern: every styling parks the cursor on
	// Accept.
	if cn.Nudging.DefaultIsAccept != cn.Nudging.Styles {
		t.Errorf("default focus on accept for %d/%d styles; paper: all",
			cn.Nudging.DefaultIsAccept, cn.Nudging.Styles)
	}
	if cn.Pointers.Channels == 0 {
		t.Error("no privacy pointers observed")
	}
	// General run shows more privacy channels than Green (availability).
	var general, green int
	for _, row := range cn.TableV {
		switch row.Run {
		case store.RunGeneral:
			general = row.PrivacyChannels
		case store.RunGreen:
			green = row.PrivacyChannels
		}
	}
	if general == 0 {
		t.Error("General run shows no privacy channels")
	}
	_ = green
}

func TestTableIVShape(t *testing.T) {
	for _, row := range testResults.Consent.TableIV {
		if row.Total() == 0 {
			t.Errorf("%s: empty screenshot distribution", row.Run)
			continue
		}
		// TV-only dominates every run, as in Table IV.
		if row.TVOnly+row.MediaLib < row.Total()/2 {
			t.Errorf("%s: tv-only+media-lib = %d of %d; distribution off",
				row.Run, row.TVOnly+row.MediaLib, row.Total())
		}
		switch row.Run {
		case store.RunGeneral:
			if row.MediaLib != 0 {
				t.Errorf("General run shows %d media libraries without interaction", row.MediaLib)
			}
		case store.RunRed:
			if row.MediaLib == 0 {
				t.Error("Red run shows no media libraries")
			}
		}
	}
}

func TestPolicyPipelineFindings(t *testing.T) {
	p := testResults.Policies
	if p.Corpus.Occurrences == 0 || len(p.Corpus.Unique) == 0 {
		t.Fatal("no policies collected")
	}
	if p.Corpus.ByLanguage["de"] == 0 {
		t.Error("no German policies")
	}
	if p.HbbTVMentions == 0 {
		t.Error("no HbbTV-tailored policies")
	}
	if len(p.Corpus.NearDuplicateGroups) == 0 {
		t.Error("no near-duplicate policy groups found")
	}
	// The titular finding: a declared 17:00-06:00 window with tracking
	// outside it.
	if !p.AdWindowDeclared {
		t.Fatal("no policy declared the 5 pm-6 am window")
	}
	if p.AdWindow.StartHour != 17 || p.AdWindow.EndHour != 6 {
		t.Errorf("window = %+v", p.AdWindow)
	}
	if len(p.WindowViolations) == 0 {
		t.Error("no tracking observed outside the declared window; the contradiction should reproduce")
	}
	for _, v := range p.WindowViolations {
		if h := v.Time.Hour(); h >= 17 || h < 6 {
			t.Errorf("violation at %v is inside the window", v.Time)
		}
	}
	if p.OptOutContradictions == 0 {
		t.Error("the HGTV-style opt-out contradiction did not reproduce")
	}
	if p.RightsCoverage[policy.Art15Access] == 0 {
		t.Error("no Art. 15 coverage detected")
	}
}

func TestStatisticalFindings(t *testing.T) {
	st := testResults.Stats
	// Run -> traffic reaches the paper's significance only at the paper's
	// sample size (p = 0.0002 at scale 1.0, verified by BenchmarkTableI /
	// EXPERIMENTS.md); at test scale we only require test sanity.
	if st.RunTraffic.P < 0 || st.RunTraffic.P > 1 || st.RunTraffic.H < 0 {
		t.Errorf("run -> traffic test degenerate: %+v", st.RunTraffic)
	}
	if !st.ChannelTrackers.Significant(0.05) {
		t.Errorf("channel -> trackers not significant (p = %v)", st.ChannelTrackers.P)
	}
	if !st.CategoryTrackers.Significant(0.2) {
		t.Errorf("category -> trackers p = %v; should at least trend", st.CategoryTrackers.P)
	}
}

func TestRenderAllProducesReport(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderAll(&buf, testResults); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"Table I:", "Table II:", "Table III:", "Table IV:", "Table V:",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8",
		"Section V-B", "Section VII",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	var fbuf bytes.Buffer
	if err := RenderFunnel(&fbuf, testFunnel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fbuf.String(), "Final channel set") {
		t.Error("funnel report incomplete")
	}
}

func TestRunSingle(t *testing.T) {
	study := NewStudy(Options{Seed: 5, Scale: 0.02, ProbeWatch: 20 * time.Second})
	run, err := study.Run(store.RunGeneral)
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != store.RunGeneral || len(run.Flows) == 0 {
		t.Errorf("run = %+v", run.Name)
	}
	if _, err := study.Run("Purple"); err == nil {
		t.Error("unknown run accepted")
	}
}
